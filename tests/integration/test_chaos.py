"""Chaos suite: crash, partition, and restart a real cluster under load.

Three scenarios from the failure model (DESIGN.md):

1. A co-op process is SIGKILLed mid-crawl.  The home's pinger (fed by
   the data path too) must declare it dead, revoke its migrations, and
   re-home the links — after the convergence window every document is
   served again with zero 5xx and zero lost documents.
2. The home is partitioned away from a co-op (deterministic blackhole
   via a FaultPlan).  The co-op keeps serving its stale copies, degrades
   failed new pulls to 302-back-to-home while its breaker is closed and
   to 503 + Retry-After once it opens, and heals through a half-open
   probe when the partition lifts.
3. The home restarts from its snapshot while walkers keep crawling; no
   migration state is lost across the restart.

Failures are injected with seeded plans or real signals; the driving
seed is printed so a failing run can be replayed (`REPRO_FAULT_SEED`).
"""

import os
import socket
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.client.realclient import (
    fetch_url,
    http_fetch,
    reset_replica_failures,
)
from repro.client.walker import RandomWalker
from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.faults import FaultPlan
from repro.http.messages import Request
from repro.http.urls import URL
from repro.server.engine import DCWSEngine
from repro.server.filestore import MemoryStore
from repro.server.fsck import assert_clean
from repro.server.threaded import ThreadedDCWSServer

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

SITE = {
    "/index.html": b'<html><a href="d.html">D</a><a href="e.html">E</a></html>',
    "/d.html": b'<html><a href="e.html">E</a></html>',
    "/e.html": b"<html>leaf</html>",
}

#: Stand-alone co-op process for the SIGKILL scenario: starts a real
#: threaded server, prints READY, then idles until killed.
COOP_SCRIPT = """\
import sys, time
from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.server.engine import DCWSEngine
from repro.server.filestore import MemoryStore
from repro.server.threaded import ThreadedDCWSServer

coop_port, home_port = int(sys.argv[1]), int(sys.argv[2])
config = ServerConfig(stats_interval=60.0, pinger_interval=60.0)
engine = DCWSEngine(Location("127.0.0.1", coop_port), config, MemoryStore(),
                    peers=[Location("127.0.0.1", home_port)])
server = ThreadedDCWSServer(engine, tick_period=0.1)
server.start()
print("READY", flush=True)
while True:
    time.sleep(1.0)
"""


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def capped_sleep(seconds: float) -> None:
    """Walker backoff with real (but bounded) waiting."""
    time.sleep(min(seconds, 0.05))


def crawl(port: int, *, walkers: int = 3, sequences: int = 8):
    """Run *walkers* concurrent random walks against 127.0.0.1:*port*;
    returns (threads, stats-list).  Transport failures are tolerated —
    chaos is the point — so walkers retry briefly and move on."""
    stats, threads = [], []

    def one(seed: int) -> None:
        walker = RandomWalker([f"http://127.0.0.1:{port}/index.html"],
                              lambda url: fetch_url(url, timeout=2.0),
                              seed=SEED + seed, sleep=capped_sleep,
                              min_steps=2, max_steps=4,
                              max_transport_retries=1)
        walker.run(sequences=sequences)
        stats.append(walker.stats)

    for i in range(walkers):
        thread = threading.Thread(target=one, args=(i,), daemon=True)
        thread.start()
        threads.append(thread)
    return threads, stats


def wait_until(predicate, deadline: float, message: str) -> None:
    end = time.time() + deadline
    while time.time() < end:
        if predicate():
            return
        time.sleep(0.05)
    pytest.fail(f"{message} (seed={SEED})")


class TestCoopCrash:
    def test_sigkill_coop_converges(self, tmp_path):
        home_port, coop_port = free_port(), free_port()
        coop_loc = Location("127.0.0.1", coop_port)
        config = ServerConfig(stats_interval=60.0, pinger_interval=0.3,
                              ping_failure_limit=2,
                              breaker_reset_timeout=0.2)
        engine = DCWSEngine(Location("127.0.0.1", home_port), config,
                            MemoryStore(SITE), entry_points=["/index.html"],
                            peers=[coop_loc])
        home = ThreadedDCWSServer(engine, tick_period=0.1)
        home.start()

        script = tmp_path / "coop.py"
        script.write_text(COOP_SCRIPT)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        proc = subprocess.Popen(
            [sys.executable, str(script), str(coop_port), str(home_port)],
            env=env, stdout=subprocess.PIPE, text=True)
        try:
            assert proc.stdout.readline().strip() == "READY"
            with home._lock:
                home.engine.policy.force_migrate("/d.html", coop_loc,
                                                 time.monotonic())
            # Warm the co-op: the redirect chain pulls /d.html over TCP.
            outcome = fetch_url(URL("127.0.0.1", home_port, "/d.html"))
            assert outcome.status == 200 and outcome.redirected

            threads, __ = crawl(home_port)
            time.sleep(0.3)
            proc.kill()  # SIGKILL: no goodbye, no FIN from the engine
            proc.wait(timeout=10)

            wait_until(lambda: home.engine.log.count("peer_dead") >= 1,
                       10.0, "home never declared the killed co-op dead")
            wait_until(
                lambda: not home.engine.policy.migrated_names(),
                10.0, "migrations to the dead co-op were never revoked")
            for thread in threads:
                thread.join(timeout=30)
            assert home.engine.stats.revocations >= 1

            # Converged: every document serves again, zero 5xx, nothing
            # redirects into the dead peer — no documents were lost.
            for __ in range(3):
                for name in SITE:
                    outcome = fetch_url(
                        URL("127.0.0.1", home_port, name), timeout=2.0)
                    assert outcome.status == 200, \
                        f"{name} -> {outcome.status} (seed={SEED})"
                    assert not outcome.redirected
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
            home.stop()


class TestPartition:
    def test_partitioned_home_degrades_then_heals(self):
        home_port, coop_port = free_port(), free_port()
        home_loc = Location("127.0.0.1", home_port)
        coop_loc = Location("127.0.0.1", coop_port)
        config = ServerConfig(stats_interval=60.0, pinger_interval=60.0,
                              validation_interval=60.0,
                              ping_failure_limit=5,
                              breaker_failure_threshold=2,
                              breaker_reset_timeout=0.2,
                              breaker_jitter=0.0)
        home_engine = DCWSEngine(home_loc, config, MemoryStore(SITE),
                                 entry_points=["/index.html"],
                                 peers=[coop_loc])
        coop_engine = DCWSEngine(coop_loc, config, MemoryStore(),
                                 peers=[home_loc])
        plan = FaultPlan(seed=SEED)
        home = ThreadedDCWSServer(home_engine, tick_period=0.1)
        coop = ThreadedDCWSServer(coop_engine, tick_period=0.1, faults=plan)
        home.start()
        coop.start()
        home_key = f"127.0.0.1:{home_port}"
        key_d = f"/~migrate/127.0.0.1/{home_port}/d.html"
        key_e = f"/~migrate/127.0.0.1/{home_port}/e.html"
        try:
            with home._lock:
                home.engine.policy.force_migrate("/d.html", coop_loc,
                                                 time.monotonic())
                home.engine.policy.force_migrate("/e.html", coop_loc,
                                                 time.monotonic())
            # Warm pull of /d.html only; /e.html stays unfetched.
            assert fetch_url(URL("127.0.0.1", home_port, "/d.html")).status \
                == 200

            plan.block(home_key)  # the co-op can no longer reach home

            # Stale copy: still served from the hosted cache.
            assert http_fetch(coop_loc,
                              Request("GET", key_d)).status == 200
            # New pull fails; breaker still closed -> bounce to home.
            for __ in range(2):
                reply = http_fetch(coop_loc, Request("GET", key_e))
                assert reply.status == 302, f"seed={SEED}"
                assert reply.headers.get("Location") == \
                    f"http://127.0.0.1:{home_port}/e.html"
            # Threshold reached: the breaker is open, shed with a hint.
            reply = http_fetch(coop_loc, Request("GET", key_e))
            assert reply.status == 503
            assert reply.headers.get("Retry-After") == "1"
            assert coop.engine.stats.pulls_degraded == 3
            assert coop.engine.stats.responses_503 == 1

            plan.unblock(home_key)
            time.sleep(0.25)  # past the breaker's backoff window
            # Half-open probe admits the pull; the circuit closes.
            assert http_fetch(coop_loc, Request("GET", key_e)).status == 200
            assert coop.engine.hosted[key_e].fetched
        finally:
            coop.stop()
            home.stop()


class TestRestartUnderLoad:
    def test_snapshot_restart_keeps_migrations(self, tmp_path):
        home_port, coop_port = free_port(), free_port()
        home_loc = Location("127.0.0.1", home_port)
        coop_loc = Location("127.0.0.1", coop_port)
        snapshot = str(tmp_path / "home.snapshot")
        store = MemoryStore(SITE)  # survives the restart (same "disk")
        config = ServerConfig(stats_interval=60.0, pinger_interval=60.0)
        coop_engine = DCWSEngine(coop_loc, config, MemoryStore(),
                                 peers=[home_loc])
        coop = ThreadedDCWSServer(coop_engine, tick_period=0.1)
        coop.start()

        def make_home():
            engine = DCWSEngine(home_loc, config, store,
                                entry_points=["/index.html"],
                                peers=[coop_loc])
            return ThreadedDCWSServer(engine, tick_period=0.1,
                                      snapshot_path=snapshot)

        first = make_home()
        first.start()
        second = None
        try:
            with first._lock:
                first.engine.policy.force_migrate("/d.html", coop_loc,
                                                  time.monotonic())
            assert fetch_url(URL("127.0.0.1", home_port, "/d.html")).status \
                == 200
            threads, stats = crawl(home_port, sequences=12)
            time.sleep(0.2)
            first.stop()  # mid-crawl restart; stop() writes the snapshot
            second = make_home()
            second.start()
            for thread in threads:
                thread.join(timeout=30)

            with second._lock:
                assert second.engine.policy.migrated_names() == ["/d.html"]
            reply = fetch_url(URL("127.0.0.1", home_port, "/d.html"),
                              max_redirects=0)
            assert reply.status == 301  # migration survived the restart
            for name in SITE:
                assert fetch_url(
                    URL("127.0.0.1", home_port, name)).status == 200
            # Walkers rode through the restart: they made progress and
            # the blip shows up as bounded transport retries, not a hang.
            assert sum(s.sequences for s in stats) == 36
        finally:
            if second is not None:
                second.stop()
            first.stop()
            coop.stop()


class TestCoopRestartUnderLoad:
    def test_coop_restart_with_lost_bytes_serves_without_404s(self, tmp_path):
        """Satellite of the durability PR: a co-op that restarts having
        lost its hosted *bytes* (its cache disk died) but kept its
        snapshot re-registers every hosted entry as unfetched and
        re-pulls on demand — the home keeps redirecting to it, so a 404
        here would be a lost document.  After convergence every document
        serves 200 and the restarted co-op answered zero 404s."""
        home_port, coop_port = free_port(), free_port()
        home_loc = Location("127.0.0.1", home_port)
        coop_loc = Location("127.0.0.1", coop_port)
        snapshot = str(tmp_path / "coop.snapshot")
        journal = str(tmp_path / "coop.wal")
        config = ServerConfig(stats_interval=60.0, pinger_interval=60.0,
                              validation_interval=60.0)
        home_engine = DCWSEngine(home_loc, config, MemoryStore(SITE),
                                 entry_points=["/index.html"],
                                 peers=[coop_loc])
        home = ThreadedDCWSServer(home_engine, tick_period=0.1)
        home.start()

        def make_coop():
            # A fresh MemoryStore each incarnation: the hosted bytes do
            # NOT survive the restart, only snapshot + journal do.
            engine = DCWSEngine(coop_loc, config, MemoryStore(),
                                peers=[home_loc])
            return ThreadedDCWSServer(engine, tick_period=0.1,
                                      snapshot_path=snapshot,
                                      journal_path=journal)

        first = make_coop()
        first.start()
        second = None
        try:
            with home._lock:
                home.engine.policy.force_migrate("/d.html", coop_loc,
                                                 time.monotonic())
                home.engine.policy.force_migrate("/e.html", coop_loc,
                                                 time.monotonic())
            # Warm both hosted copies over real sockets.
            for name in ("/d.html", "/e.html"):
                outcome = fetch_url(URL("127.0.0.1", home_port, name))
                assert outcome.status == 200 and outcome.redirected

            threads, stats = crawl(home_port, sequences=10)
            time.sleep(0.2)
            first.stop()   # restart mid-crawl; bytes are gone with it
            second = make_coop()
            second.start()
            for thread in threads:
                thread.join(timeout=30)

            key_d = f"/~migrate/127.0.0.1/{home_port}/d.html"
            key_e = f"/~migrate/127.0.0.1/{home_port}/e.html"
            with second._lock:
                # The snapshot re-registered the entries, unfetched.
                assert set(second.engine.hosted) == {key_d, key_e}
            # Convergence: every document serves 200 again; the hosted
            # entries re-fetch lazily on first demand.
            for __ in range(3):
                for name in SITE:
                    outcome = fetch_url(
                        URL("127.0.0.1", home_port, name), timeout=2.0)
                    assert outcome.status == 200, \
                        f"{name} -> {outcome.status} (seed={SEED})"
            with second._lock:
                assert second.engine.hosted[key_d].fetched
                assert second.engine.hosted[key_e].fetched
                # Zero 404s across the restarted co-op's whole life:
                # unfetched entries re-pull, they never deny.
                assert second.engine.stats.responses_404 == 0, \
                    f"seed={SEED}"
                assert second.engine.stats.pulls_completed >= 2
        finally:
            if second is not None:
                second.stop()
            first.stop()
            home.stop()


class TestReplicaHolderCrash:
    """Scenario 5: SIGKILL one holder of a k=2 replication group.

    The tentpole gate of the replication-groups subsystem: with k-copy
    placement and autonomous repair, a single co-op crash mid-crawl must
    cost *zero* availability (no 404s) and cause *zero* 302-storms (the
    document is never revoked back home — its surviving copy keeps
    serving while the repair daemon re-replicates onto a spare co-op).
    Both the primary holder and the replica holder get killed, in turn.
    """

    @pytest.mark.parametrize("victim_role", ["primary", "replica"])
    def test_sigkill_holder_zero_404s_zero_revocations(self, tmp_path,
                                                       victim_role):
        reset_replica_failures()
        home_port = free_port()
        coop_ports = [free_port() for __ in range(3)]
        config = ServerConfig(stats_interval=0.3, pinger_interval=0.3,
                              ping_failure_limit=2,
                              breaker_reset_timeout=0.2,
                              replication_k=2, max_replicas=2)
        engine = DCWSEngine(
            Location("127.0.0.1", home_port), config, MemoryStore(SITE),
            entry_points=["/index.html"],
            peers=[Location("127.0.0.1", p) for p in coop_ports])
        home = ThreadedDCWSServer(engine, tick_period=0.1)

        script = tmp_path / "coop.py"
        script.write_text(COOP_SCRIPT)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        procs = {}
        for port in coop_ports:
            procs[port] = subprocess.Popen(
                [sys.executable, str(script), str(port), str(home_port)],
                env=env, stdout=subprocess.PIPE, text=True)
        key_d = f"/~migrate/127.0.0.1/{home_port}/d.html"
        try:
            # All co-ops must be listening before home's pinger starts:
            # a peer declared dead during bootstrap is dropped from the
            # GLT and only gossip would rediscover it.
            for port in coop_ports:
                assert procs[port].stdout.readline().strip() == "READY"
            home.start()
            primary = Location("127.0.0.1", coop_ports[0])
            with home._lock:
                home.engine.policy.force_migrate("/d.html", primary,
                                                 time.monotonic())
            # The repair daemon proactively tops the group up to k=2.
            wait_until(
                lambda: len(home.engine.graph.get("/d.html").replicas) == 1,
                10.0, "repair daemon never topped the group up to k=2")
            replica = next(iter(home.engine.graph.get("/d.html").replicas))
            # Warm both holders: each pulls its copy over real TCP.
            for holder in (primary, replica):
                assert http_fetch(holder,
                                  Request("GET", key_d)).status == 200

            statuses = []
            statuses_lock = threading.Lock()

            def recording_fetch(url):
                outcome = fetch_url(url, timeout=2.0)
                with statuses_lock:
                    statuses.append(outcome.status)
                return outcome

            stats, threads = [], []

            def one(seed: int) -> None:
                walker = RandomWalker(
                    [f"http://127.0.0.1:{home_port}/index.html"],
                    recording_fetch, seed=SEED + seed, sleep=capped_sleep,
                    min_steps=2, max_steps=4, max_transport_retries=2)
                walker.run(sequences=8)
                stats.append(walker.stats)

            for i in range(3):
                thread = threading.Thread(target=one, args=(i,), daemon=True)
                thread.start()
                threads.append(thread)

            time.sleep(0.3)
            victim = primary if victim_role == "primary" else replica
            proc = procs[victim.port]
            proc.kill()  # SIGKILL mid-crawl: no goodbye, no FIN
            proc.wait(timeout=10)

            wait_until(lambda: home.engine.log.count("peer_dead") >= 1,
                       10.0, "home never declared the killed holder dead")
            # Autonomous repair: the group is restored to two live
            # holders — neither of them the victim — without the
            # document ever being revoked back home.
            wait_until(
                lambda: victim not in
                home.engine.graph.get("/d.html").locations()
                and len(home.engine.graph.get("/d.html").locations()) == 2,
                10.0, "group never repaired back to k=2 live holders")
            for thread in threads:
                thread.join(timeout=30)

            with home._lock:
                assert home.engine.stats.replica_drops >= 1
                assert home.engine.stats.repairs >= 2  # top-up + repair
                # The zero-302-storm gate: holder death never caused a
                # revocation — the survivor kept the group serving.
                assert home.engine.stats.revocations == 0, f"seed={SEED}"
                # /d.html stayed out (never revoked home); the engine may
                # have migrated other hot documents under the crawl load.
                assert "/d.html" in home.engine.policy.migrated_names()

            # Zero 404s across the whole storm: no request ever saw a
            # missing document, crash or no crash.
            with statuses_lock:
                assert statuses, "walkers never completed a fetch"
                assert 404 not in statuses, f"saw a 404 (seed={SEED})"

            # Converged: everything serves, nothing points at the victim.
            for __ in range(3):
                for name in SITE:
                    outcome = fetch_url(
                        URL("127.0.0.1", home_port, name), timeout=2.0)
                    assert outcome.status == 200, \
                        f"{name} -> {outcome.status} (seed={SEED})"
        finally:
            for proc in procs.values():
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=10)
            home.stop()
            reset_replica_failures()


class TestFalseDeathRediscovery:
    """Scenario 6: a co-op is *partitioned* (not killed), declared dead,
    and must be rediscovered after the partition heals.

    The adaptive-membership gate: the home's accrual detector + failure
    bound declare the partitioned holder dead and repair re-replicates
    its documents elsewhere; the rediscovery daemon then re-probes the
    dead peer at a jittered exponential backoff, so when the partition
    lifts the peer is back (``peer_rejoined``) within two re-probe
    periods — and its surviving stale copy is settled by rejoin
    reconciliation (the group is already whole, so the returning copy
    loses).  Throughout: zero 404s, no document with two primaries
    (fsck), and every k=2 group back healthy.
    """

    def test_partition_heal_rediscovers_within_two_periods(self):
        reset_replica_failures()
        home_port = free_port()
        coop_ports = [free_port() for __ in range(3)]
        config = ServerConfig(stats_interval=0.3, pinger_interval=0.3,
                              ping_failure_limit=2,
                              validation_interval=60.0,
                              breaker_reset_timeout=0.2,
                              replication_k=2, max_replicas=2,
                              reprobe_interval=0.3, reprobe_backoff=2.0,
                              reprobe_max_interval=0.6, reprobe_jitter=0.0)
        home_loc = Location("127.0.0.1", home_port)
        coop_locs = [Location("127.0.0.1", p) for p in coop_ports]
        home_plan = FaultPlan(seed=SEED)       # home's outbound view
        victim_plan = FaultPlan(seed=SEED)     # the victim's outbound view
        home_engine = DCWSEngine(home_loc, config, MemoryStore(SITE),
                                 entry_points=["/index.html"],
                                 peers=coop_locs)
        home = ThreadedDCWSServer(home_engine, tick_period=0.1,
                                  faults=home_plan)
        coops = []
        for index, loc in enumerate(coop_locs):
            engine = DCWSEngine(loc, config, MemoryStore(),
                                peers=[home_loc])
            coops.append(ThreadedDCWSServer(
                engine, tick_period=0.1,
                faults=victim_plan if index == 0 else None))
        victim = coop_locs[0]
        victim_key = str(victim)
        home_key = str(home_loc)
        try:
            for coop in coops:
                coop.start()
            home.start()
            with home._lock:
                home.engine.policy.force_migrate("/d.html", victim,
                                                 time.monotonic())
            wait_until(
                lambda: len(home.engine.graph.get("/d.html").replicas) == 1,
                10.0, "repair daemon never topped the group up to k=2")
            key_d = f"/~migrate/127.0.0.1/{home_port}/d.html"
            replica = next(iter(home.engine.graph.get("/d.html").replicas))
            for holder in (victim, replica):
                assert http_fetch(holder,
                                  Request("GET", key_d)).status == 200

            statuses = []
            statuses_lock = threading.Lock()

            def recording_fetch(url):
                outcome = fetch_url(url, timeout=2.0)
                with statuses_lock:
                    statuses.append(outcome.status)
                return outcome

            threads = []

            def one(seed: int) -> None:
                walker = RandomWalker(
                    [f"http://127.0.0.1:{home_port}/index.html"],
                    recording_fetch, seed=SEED + seed, sleep=capped_sleep,
                    min_steps=2, max_steps=4, max_transport_retries=2)
                walker.run(sequences=25)

            for i in range(3):
                thread = threading.Thread(target=one, args=(i,), daemon=True)
                thread.start()
                threads.append(thread)
            time.sleep(0.3)

            # Bidirectional partition: each plan is its owner's *outbound*
            # view, so the victim must also stop gossiping back (incoming
            # piggyback counts as proof of life at the home).
            home_plan.block(victim_key)
            victim_plan.block(home_key)

            wait_until(
                lambda: home.engine.membership.is_dead(victim_key),
                10.0, "home never declared the partitioned co-op dead")
            # Repair re-homed the group onto the survivors: two live
            # holders, neither of them the victim, nothing revoked home.
            wait_until(
                lambda: victim not in
                home.engine.graph.get("/d.html").locations()
                and len(home.engine.graph.get("/d.html").locations()) == 2,
                10.0, "group never repaired away from the dead holder")

            # Heal.  The gate: rediscovered within two re-probe periods —
            # asserted as "at most two probes emitted after healing", the
            # schedule-level formulation, which stays deterministic when
            # a loaded CI box stretches wall-clock tick latency.
            probes_before = home.engine.membership.counters.probes_sent
            home_plan.unblock(victim_key)
            victim_plan.unblock(home_key)
            wait_until(
                lambda: home.engine.membership.state(victim_key) == "alive",
                10.0, "healed co-op was never rediscovered")
            probes_after_heal = \
                home.engine.membership.counters.probes_sent - probes_before
            with home._lock:
                assert home.engine.membership.counters.rediscoveries >= 1
                assert home.engine.log.count("peer_rejoined") >= 1
            # Rejoin reconciliation: the victim still held its stale copy
            # of /d.html, but the group is already whole — the returning
            # copy loses.  Either half of reconciliation may settle it
            # first: the home reads the victim's manifest and records a
            # reconcile drop, or the victim's own rejoin path forces the
            # copy due for validation and drops it on the home's 302.
            wait_until(
                lambda: home.engine.membership.counters.reconcile_drops >= 1
                or key_d not in coops[0].engine.hosted,
                10.0, "rejoin reconciliation never settled the stale copy")

            for thread in threads:
                thread.join(timeout=30)

            with home._lock:
                # All k=2 groups back healthy, victim re-registered.
                assert home.engine.replication.groups_below_target() == 0
                assert home.engine.glt.get(victim) is not None
                # The victim is not a holder: reconciliation dropped its
                # copy rather than re-admitting a third primary-ish copy.
                record = home.engine.graph.get("/d.html")
                assert victim not in record.locations()
                # No document with two primaries, no dead holder left in
                # any serving set (fsck invariant 8).
                assert_clean(home.engine)

            # Zero 404s across partition, death, repair, and rejoin.
            with statuses_lock:
                assert statuses, "walkers never completed a fetch"
                assert 404 not in statuses, f"saw a 404 (seed={SEED})"
            for name in SITE:
                outcome = fetch_url(
                    URL("127.0.0.1", home_port, name), timeout=2.0)
                assert outcome.status == 200, \
                    f"{name} -> {outcome.status} (seed={SEED})"
            # Within two re-probe periods of the heal: the probe that was
            # already scheduled when the partition lifted, plus at most
            # one more, brought the peer back.
            assert probes_after_heal <= 2, \
                f"{probes_after_heal} probes after heal (seed={SEED})"
        finally:
            home.stop()
            for coop in coops:
                coop.stop()
            reset_replica_failures()


class TestCorruptionQuarantine:
    """Scenario 7: one holder of a k=2 group silently rots mid-crawl.

    The integrity-subsystem gate: a byte flip in one holder's store must
    be *detected* within a scrub period, the copy *quarantined* (and
    journaled via the event log), and the group *repaired* from a
    verified copy — while no client ever receives a corrupt 200 body
    (every fetch_url outcome re-verifies X-DCWS-Digest client-side).
    Parametrized over three walker-seed offsets: the result must not
    depend on crawl interleaving.
    """

    @pytest.mark.parametrize("seed_offset", [0, 1, 2])
    def test_byte_flip_quarantined_and_repaired(self, seed_offset):
        reset_replica_failures()
        home_port = free_port()
        coop_ports = [free_port() for __ in range(3)]
        # ping_failure_limit is generous: nobody dies in this scenario,
        # and a spurious load-induced death would drop the victim's copy
        # through the membership path before the scrubber could see it.
        config = ServerConfig(stats_interval=0.3, pinger_interval=0.3,
                              ping_failure_limit=6,
                              validation_interval=60.0,
                              breaker_reset_timeout=0.2,
                              replication_k=2, max_replicas=2,
                              scrub_interval=0.3, scrub_budget=16,
                              integrity_serve_sample=1)
        home_loc = Location("127.0.0.1", home_port)
        coop_locs = [Location("127.0.0.1", p) for p in coop_ports]
        home_engine = DCWSEngine(home_loc, config, MemoryStore(SITE),
                                 entry_points=["/index.html"],
                                 peers=coop_locs)
        home = ThreadedDCWSServer(home_engine, tick_period=0.1)
        coops = [ThreadedDCWSServer(
            DCWSEngine(loc, config, MemoryStore(), peers=[home_loc]),
            tick_period=0.1) for loc in coop_locs]
        victim = coops[0]
        key_d = f"/~migrate/127.0.0.1/{home_port}/d.html"
        try:
            for coop in coops:
                coop.start()
            home.start()
            with home._lock:
                home.engine.policy.force_migrate("/d.html", coop_locs[0],
                                                 time.monotonic())
            wait_until(
                lambda: len(home.engine.graph.get("/d.html").replicas) == 1,
                10.0, "repair daemon never topped the group up to k=2")
            replica = next(iter(home.engine.graph.get("/d.html").replicas))
            for holder in (coop_locs[0], replica):
                assert http_fetch(holder,
                                  Request("GET", key_d)).status == 200

            outcomes = []
            outcomes_lock = threading.Lock()

            def recording_fetch(url):
                outcome = fetch_url(url, timeout=2.0)
                with outcomes_lock:
                    outcomes.append(outcome)
                return outcome

            threads = []

            def one(seed: int) -> None:
                walker = RandomWalker(
                    [f"http://127.0.0.1:{home_port}/index.html"],
                    recording_fetch,
                    seed=SEED + 10 * seed_offset + seed,
                    sleep=capped_sleep, min_steps=2, max_steps=4,
                    max_transport_retries=2)
                walker.run(sequences=10)

            for i in range(3):
                thread = threading.Thread(target=one, args=(i,), daemon=True)
                thread.start()
                threads.append(thread)
            time.sleep(0.3)

            # The silent byte flip: rot the victim's stored copy without
            # touching its recorded digest (exactly what a bad disk does).
            with victim._lock:
                data = victim.engine.store.get(key_d)
                index = len(data) // 2
                victim.engine.store.put(
                    key_d,
                    data[:index] + bytes([data[index] ^ 0xFF])
                    + data[index + 1:])

            # Detected within a scrub period and quarantined + journaled.
            # (Lifetime counters, not the live table: the full detect ->
            # notify -> repair -> clear pipeline can finish between two
            # polls of this loop.)
            wait_until(
                lambda: victim.engine.log.count("quarantine") >= 1,
                10.0, "victim never quarantined its rotted copy")
            assert victim.engine.integrity.counters \
                .corruptions_detected >= 1
            event = victim.engine.log.last("quarantine")
            assert event is not None \
                and event.fields["reason"] in ("scrub", "serve")

            # The home hears about it, drops the holder, and repairs the
            # group back to two live verified holders.  (Placement is the
            # policy's business: the victim may legitimately be re-picked
            # — it then re-pulls verified bytes, which is a repair too.)
            wait_until(
                lambda: home.engine.integrity.counters
                .holder_quarantines_reported >= 1,
                10.0, "home was never told about the quarantined holder")
            assert home.engine.log.count("holder_quarantined") >= 1
            wait_until(
                lambda: len(home.engine.graph.get("/d.html").locations())
                == 2,
                10.0, "group never repaired back to two live holders")
            # The quarantine lifts once the corrupt copy is dropped (or
            # replaced by a verified re-pull) — it never lingers.
            wait_until(
                lambda: not victim.engine.integrity.is_quarantined(key_d),
                10.0, "victim quarantine never cleared after repair")

            for thread in threads:
                thread.join(timeout=30)

            with home._lock:
                assert home.engine.stats.replica_drops \
                    + home.engine.stats.revocations >= 1

            # Zero corrupt 200 bodies across the whole storm: every body
            # the walkers accepted verified against its digest, and none
            # came up short against its Content-Length.
            with outcomes_lock:
                assert outcomes, "walkers never completed a fetch"
                assert not any(o.corrupt_body for o in outcomes), \
                    f"client saw a corrupt 200 body (seed={SEED})"
                assert not any(o.short_body for o in outcomes), \
                    f"client saw a short body (seed={SEED})"
                assert 404 not in [o.status for o in outcomes], \
                    f"saw a 404 (seed={SEED})"

            # Post-recovery: every document serves verified bytes and
            # fsck invariant 9 holds on every engine (no quarantined
            # entry in any serve table).
            for __ in range(3):
                for name in SITE:
                    outcome = fetch_url(
                        URL("127.0.0.1", home_port, name), timeout=2.0)
                    assert outcome.status == 200, \
                        f"{name} -> {outcome.status} (seed={SEED})"
                    assert not outcome.corrupt_body
            with home._lock:
                assert_clean(home.engine)
            for coop in coops:
                with coop._lock:
                    assert_clean(coop.engine)
        finally:
            home.stop()
            for coop in coops:
                coop.stop()
            reset_replica_failures()


class TestWorkerCrash:
    """Scenario 4: one multi-process worker is SIGKILLed under load.

    The supervisor must respawn it and rebroadcast the roster; every
    request that reaches a live worker keeps being answered from the
    shared corpus, so across the whole storm the walkers see zero 404s.
    Transport-level resets (the killed worker's accept queue dies with
    it) are expected and retried — chaos is the point.
    """

    def test_sigkill_worker_zero_404s(self):
        pytest.importorskip("repro.server.multiproc")
        from repro.server.multiproc import WorkerSupervisor, choose_mode

        if choose_mode() is None:
            pytest.skip("no multi-process accept mode on this platform")

        def factory(index, location):
            config = ServerConfig(stats_interval=60.0, pinger_interval=60.0)
            return DCWSEngine(location, config, MemoryStore(dict(SITE)),
                              entry_points=["/index.html"], peers=[])

        statuses = []
        statuses_lock = threading.Lock()

        def recording_fetch(url):
            outcome = fetch_url(url, timeout=2.0)
            with statuses_lock:
                statuses.append(outcome.status)
            return outcome

        with WorkerSupervisor(factory, 2, port=0) as sup:
            stats, threads = [], []

            def one(seed: int) -> None:
                walker = RandomWalker(
                    [f"http://127.0.0.1:{sup.port}/index.html"],
                    recording_fetch, seed=SEED + seed, sleep=capped_sleep,
                    min_steps=2, max_steps=4, max_transport_retries=2)
                walker.run(sequences=10)
                stats.append(walker.stats)

            for i in range(3):
                thread = threading.Thread(target=one, args=(i,), daemon=True)
                thread.start()
                threads.append(thread)

            time.sleep(0.3)
            victim = sup._procs[0].process.pid
            os.kill(victim, 9)  # SIGKILL mid-crawl: no goodbye

            wait_until(lambda: sup.respawns >= 1
                       and all(p.alive for p in sup._procs),
                       10.0, "supervisor never respawned the killed worker")
            for thread in threads:
                thread.join(timeout=30)

            # The respawned worker answers too: every document reachable.
            for name in SITE:
                outcome = fetch_url(
                    URL("127.0.0.1", sup.port, name), timeout=2.0)
                assert outcome.status == 200, \
                    f"{name} -> {outcome.status} (seed={SEED})"

        with statuses_lock:
            assert statuses, "walkers never completed a fetch"
            assert 404 not in statuses, f"saw a 404 (seed={SEED})"
        total = sum(s.requests for s in stats)
        assert total > 0
