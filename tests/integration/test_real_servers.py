"""End-to-end tests over real sockets, against both front ends.

Two DCWS servers run on loopback ports; a real HTTP client exercises
serving, migration, redirection, lazy pulls, piggybacking and the
periodic machinery — the same flows the simulator models, on actual TCP
connections.  The whole suite is parametrized over the two socket front
ends (thread-per-connection and the selectors event loop), which must be
behaviourally identical: same engine, same protocol code, same answers.
"""

import socket
import time

import pytest

from repro.client.cache import ValidatorCache
from repro.client.realclient import (browser_fetch, fetch_url, head_ok,
                                     http_fetch)
from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.http.messages import Request
from repro.http.urls import URL
from repro.server.aio import AsyncDCWSServer
from repro.server.engine import DCWSEngine
from repro.server.filestore import MemoryStore
from repro.server.threaded import ThreadedDCWSServer

FRONT_ENDS = {"threaded": ThreadedDCWSServer, "aio": AsyncDCWSServer}

SITE = {
    "/index.html": b'<html><a href="d.html">D</a><img src="i.gif"></html>',
    "/d.html": b'<html><a href="e.html">E</a></html>',
    "/e.html": b"<html>leaf</html>",
    "/i.gif": b"GIF89a" + b"x" * 500,
    "/big.html": b"<html>" + b"<p>lorem ipsum dolor</p>" * 64 + b"</html>",
}


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@pytest.fixture(params=sorted(FRONT_ENDS))
def pair(request):
    """A running (home, coop) server pair on loopback, per front end."""
    server_cls = FRONT_ENDS[request.param]
    home_loc = Location("127.0.0.1", free_port())
    coop_loc = Location("127.0.0.1", free_port())
    config = ServerConfig(stats_interval=0.5, pinger_interval=0.5,
                          validation_interval=2.0,
                          migration_hit_threshold=1.0)
    home_engine = DCWSEngine(home_loc, config, MemoryStore(SITE),
                             entry_points=["/index.html"], peers=[coop_loc])
    coop_engine = DCWSEngine(coop_loc, config, MemoryStore(),
                             peers=[home_loc])
    home = server_cls(home_engine, tick_period=0.1)
    coop = server_cls(coop_engine, tick_period=0.1)
    home.start()
    coop.start()
    try:
        yield home, coop
    finally:
        home.stop()
        coop.stop()


def url_of(server, path: str) -> URL:
    return URL("127.0.0.1", server.port, path)


class TestBasicServing:
    def test_serves_document(self, pair):
        home, __ = pair
        outcome = fetch_url(url_of(home, "/d.html"))
        assert outcome.status == 200
        assert outcome.links == ["e.html"]

    def test_404(self, pair):
        home, __ = pair
        assert fetch_url(url_of(home, "/ghost.html")).status == 404

    def test_head_probe(self, pair):
        home, __ = pair
        assert head_ok(Location("127.0.0.1", home.port))

    def test_bad_request_handled(self, pair):
        home, __ = pair
        with socket.create_connection(("127.0.0.1", home.port),
                                      timeout=5) as raw:
            raw.sendall(b"NOT-HTTP\r\n\r\n")
            data = raw.recv(65536)
        assert b"400" in data.split(b"\r\n")[0]

    def test_concurrent_fetches(self, pair):
        import threading

        home, __ = pair
        results = []

        def fetch_many():
            for __ in range(10):
                results.append(fetch_url(url_of(home, "/d.html")).status)

        threads = [threading.Thread(target=fetch_many) for __ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results.count(200) == 40


class TestMigrationOverSockets:
    def test_redirect_and_lazy_pull(self, pair):
        home, coop = pair
        home_loc = home.engine.location
        with home._lock:
            home.engine.policy.force_migrate(
                "/d.html", coop.engine.location, time.monotonic())
        # Old URL now redirects...
        request = Request(method="GET", target="/d.html")
        response = http_fetch(home_loc, request)
        assert response.status == 301
        location = response.headers.get("Location")
        assert "~migrate" in location
        # ...and following it makes the co-op pull from home, over TCP.
        outcome = fetch_url(url_of(home, "/d.html"))
        assert outcome.status == 200
        assert outcome.redirected
        key = f"/~migrate/127.0.0.1/{home.port}/d.html"
        assert coop.engine.hosted[key].fetched

    def test_dirty_referrer_served_with_rewritten_links(self, pair):
        home, coop = pair
        with home._lock:
            home.engine.policy.force_migrate(
                "/d.html", coop.engine.location, time.monotonic())
        outcome = fetch_url(url_of(home, "/index.html"))
        assert outcome.status == 200
        assert any("~migrate" in link for link in outcome.links)

    def test_organic_migration_under_load(self, pair):
        home, coop = pair
        deadline = time.time() + 10.0
        migrated = False
        while time.time() < deadline and not migrated:
            for __ in range(25):
                fetch_url(url_of(home, "/d.html"))
                fetch_url(url_of(home, "/i.gif"))
            with home._lock:
                migrated = bool(home.engine.graph.migrated_documents())
        assert migrated, "no migration happened within the deadline"


class TestPeriodicMachinery:
    def test_pinger_spreads_load_information(self, pair):
        home, coop = pair
        deadline = time.time() + 5.0
        while time.time() < deadline:
            with coop._lock:
                row = coop.engine.glt.get(home.engine.location)
                if row is not None and row.timestamp > float("-inf"):
                    return
            time.sleep(0.1)
        pytest.fail("pinger never spread load information")

    def test_validation_refreshes_changed_content(self, pair):
        home, coop = pair
        with home._lock:
            home.engine.policy.force_migrate(
                "/e.html", coop.engine.location, time.monotonic())
        # Pull the document to the co-op.
        outcome = fetch_url(url_of(home, "/e.html"))
        assert outcome.status == 200
        with home._lock:
            home.engine.update_document("/e.html", b"<html>edited</html>")
        key = f"/~migrate/127.0.0.1/{home.port}/e.html"
        deadline = time.time() + 8.0
        while time.time() < deadline:
            with coop._lock:
                try:
                    if coop.engine.store.get(key) == b"<html>edited</html>":
                        return
                except Exception:
                    pass
            time.sleep(0.2)
        pytest.fail("validation never refreshed the co-op copy")


class TestConditionalGetOverSockets:
    def test_validator_cache_revalidates(self, pair):
        home, __ = pair
        validators = ValidatorCache()
        url = url_of(home, "/d.html")
        first = fetch_url(url, validators=validators)
        assert first.status == 200
        second = fetch_url(url, validators=validators)
        assert second.not_modified
        assert second.ok
        assert second.status == 304
        assert second.wire_size == 0
        # The cached entry preserves what the walker needs to keep going.
        assert second.links == first.links
        assert validators.not_modified == 1

    def test_walker_revalidates_like_a_browser(self, pair):
        from repro.client.walker import RandomWalker

        home, __ = pair
        fetch = browser_fetch()
        walker = RandomWalker(
            [f"http://127.0.0.1:{home.port}/index.html"], fetch,
            seed=7, sleep=lambda __: None)
        walker.run(sequences=4)
        assert walker.stats.not_modified > 0
        assert fetch.validators.not_modified == walker.stats.not_modified
        # Revalidated fetches move head bytes only: the wire total is
        # strictly below the entity total.
        assert walker.stats.bytes_received < walker.stats.entity_bytes

    def test_update_breaks_validator(self, pair):
        home, __ = pair
        validators = ValidatorCache()
        url = url_of(home, "/e.html")
        assert fetch_url(url, validators=validators).status == 200
        with home._lock:
            home.engine.update_document("/e.html", b"<html>edited</html>")
        outcome = fetch_url(url, validators=validators)
        assert outcome.status == 200
        assert not outcome.not_modified


class TestGzipOverSockets:
    def test_gzip_reduces_wire_bytes(self, pair):
        home, __ = pair
        outcome = fetch_url(url_of(home, "/big.html"), accept_gzip=True)
        assert outcome.status == 200
        assert outcome.size == len(SITE["/big.html"])
        assert outcome.wire_size < outcome.size

    def test_identity_without_accept_encoding(self, pair):
        home, __ = pair
        outcome = fetch_url(url_of(home, "/big.html"))
        assert outcome.status == 200
        assert outcome.wire_size == outcome.size == len(SITE["/big.html"])


class TestRangeOverSockets:
    def test_206_slice(self, pair):
        home, __ = pair
        request = Request(method="GET", target="/big.html")
        request.headers.set("Range", "bytes=0-9")
        response = http_fetch(home.engine.location, request)
        assert response.status == 206
        assert response.body == SITE["/big.html"][:10]
        assert response.headers.get("Content-Range") == \
            f"bytes 0-9/{len(SITE['/big.html'])}"

    def test_416_past_end(self, pair):
        home, __ = pair
        request = Request(method="GET", target="/e.html")
        request.headers.set("Range", "bytes=99999-")
        response = http_fetch(home.engine.location, request)
        assert response.status == 416
        assert response.headers.get("Content-Range") == \
            f"bytes */{len(SITE['/e.html'])}"


class TestFramingRecoveryOverSockets:
    """The Content-Length framing bugfix, observed from the wire."""

    def test_negative_length_answers_400_then_keeps_serving(self, pair):
        home, __ = pair
        wire = (b"POST /x HTTP/1.1\r\nHost: h\r\nContent-Length: -20\r\n\r\n"
                b"GET /e.html HTTP/1.1\r\nHost: h\r\n\r\n")
        with socket.create_connection(("127.0.0.1", home.port),
                                      timeout=5) as raw:
            raw.sendall(wire)
            raw.settimeout(5)
            data = b""
            deadline = time.time() + 5.0
            while b"<html>leaf</html>" not in data and \
                    time.time() < deadline:
                chunk = raw.recv(65536)
                if not chunk:
                    break
                data += chunk
        # First answer is the 400; the pipelined request behind the
        # malformed one is framed correctly and served.
        assert b"400" in data.split(b"\r\n")[0]
        assert b"<html>leaf</html>" in data

    def test_conflicting_lengths_answer_400_and_close(self, pair):
        home, __ = pair
        wire = (b"POST /x HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n"
                b"Content-Length: 30\r\n\r\nhello"
                b"GET /e.html HTTP/1.1\r\nHost: h\r\n\r\n")
        with socket.create_connection(("127.0.0.1", home.port),
                                      timeout=5) as raw:
            raw.sendall(wire)
            raw.settimeout(5)
            data = b""
            while True:
                chunk = raw.recv(65536)
                if not chunk:
                    break
                data += chunk
        # Smuggling-ambiguous framing: one 400, then the connection
        # closes without ever serving the smuggled request.
        assert b"400" in data.split(b"\r\n")[0]
        assert b"<html>leaf</html>" not in data


class TestLifecycle:
    def test_double_start_rejected(self, pair):
        home, __ = pair
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            home.start()

    def test_context_manager(self):
        loc = Location("127.0.0.1", free_port())
        engine = DCWSEngine(loc, ServerConfig(), MemoryStore(SITE),
                            entry_points=["/index.html"])
        with ThreadedDCWSServer(engine) as server:
            assert server.wait_ready()
            assert fetch_url(url_of(server, "/e.html")).status == 200
