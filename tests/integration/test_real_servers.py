"""End-to-end tests over real sockets, against both front ends.

Two DCWS servers run on loopback ports; a real HTTP client exercises
serving, migration, redirection, lazy pulls, piggybacking and the
periodic machinery — the same flows the simulator models, on actual TCP
connections.  The whole suite is parametrized over the two socket front
ends (thread-per-connection and the selectors event loop), which must be
behaviourally identical: same engine, same protocol code, same answers.
"""

import socket
import time

import pytest

from repro.client.realclient import fetch_url, head_ok, http_fetch
from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.http.messages import Request
from repro.http.urls import URL
from repro.server.aio import AsyncDCWSServer
from repro.server.engine import DCWSEngine
from repro.server.filestore import MemoryStore
from repro.server.threaded import ThreadedDCWSServer

FRONT_ENDS = {"threaded": ThreadedDCWSServer, "aio": AsyncDCWSServer}

SITE = {
    "/index.html": b'<html><a href="d.html">D</a><img src="i.gif"></html>',
    "/d.html": b'<html><a href="e.html">E</a></html>',
    "/e.html": b"<html>leaf</html>",
    "/i.gif": b"GIF89a" + b"x" * 500,
}


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@pytest.fixture(params=sorted(FRONT_ENDS))
def pair(request):
    """A running (home, coop) server pair on loopback, per front end."""
    server_cls = FRONT_ENDS[request.param]
    home_loc = Location("127.0.0.1", free_port())
    coop_loc = Location("127.0.0.1", free_port())
    config = ServerConfig(stats_interval=0.5, pinger_interval=0.5,
                          validation_interval=2.0,
                          migration_hit_threshold=1.0)
    home_engine = DCWSEngine(home_loc, config, MemoryStore(SITE),
                             entry_points=["/index.html"], peers=[coop_loc])
    coop_engine = DCWSEngine(coop_loc, config, MemoryStore(),
                             peers=[home_loc])
    home = server_cls(home_engine, tick_period=0.1)
    coop = server_cls(coop_engine, tick_period=0.1)
    home.start()
    coop.start()
    try:
        yield home, coop
    finally:
        home.stop()
        coop.stop()


def url_of(server, path: str) -> URL:
    return URL("127.0.0.1", server.port, path)


class TestBasicServing:
    def test_serves_document(self, pair):
        home, __ = pair
        outcome = fetch_url(url_of(home, "/d.html"))
        assert outcome.status == 200
        assert outcome.links == ["e.html"]

    def test_404(self, pair):
        home, __ = pair
        assert fetch_url(url_of(home, "/ghost.html")).status == 404

    def test_head_probe(self, pair):
        home, __ = pair
        assert head_ok(Location("127.0.0.1", home.port))

    def test_bad_request_handled(self, pair):
        home, __ = pair
        with socket.create_connection(("127.0.0.1", home.port),
                                      timeout=5) as raw:
            raw.sendall(b"NOT-HTTP\r\n\r\n")
            data = raw.recv(65536)
        assert b"400" in data.split(b"\r\n")[0]

    def test_concurrent_fetches(self, pair):
        import threading

        home, __ = pair
        results = []

        def fetch_many():
            for __ in range(10):
                results.append(fetch_url(url_of(home, "/d.html")).status)

        threads = [threading.Thread(target=fetch_many) for __ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results.count(200) == 40


class TestMigrationOverSockets:
    def test_redirect_and_lazy_pull(self, pair):
        home, coop = pair
        home_loc = home.engine.location
        with home._lock:
            home.engine.policy.force_migrate(
                "/d.html", coop.engine.location, time.monotonic())
        # Old URL now redirects...
        request = Request(method="GET", target="/d.html")
        response = http_fetch(home_loc, request)
        assert response.status == 301
        location = response.headers.get("Location")
        assert "~migrate" in location
        # ...and following it makes the co-op pull from home, over TCP.
        outcome = fetch_url(url_of(home, "/d.html"))
        assert outcome.status == 200
        assert outcome.redirected
        key = f"/~migrate/127.0.0.1/{home.port}/d.html"
        assert coop.engine.hosted[key].fetched

    def test_dirty_referrer_served_with_rewritten_links(self, pair):
        home, coop = pair
        with home._lock:
            home.engine.policy.force_migrate(
                "/d.html", coop.engine.location, time.monotonic())
        outcome = fetch_url(url_of(home, "/index.html"))
        assert outcome.status == 200
        assert any("~migrate" in link for link in outcome.links)

    def test_organic_migration_under_load(self, pair):
        home, coop = pair
        deadline = time.time() + 10.0
        migrated = False
        while time.time() < deadline and not migrated:
            for __ in range(25):
                fetch_url(url_of(home, "/d.html"))
                fetch_url(url_of(home, "/i.gif"))
            with home._lock:
                migrated = bool(home.engine.graph.migrated_documents())
        assert migrated, "no migration happened within the deadline"


class TestPeriodicMachinery:
    def test_pinger_spreads_load_information(self, pair):
        home, coop = pair
        deadline = time.time() + 5.0
        while time.time() < deadline:
            with coop._lock:
                row = coop.engine.glt.get(home.engine.location)
                if row is not None and row.timestamp > float("-inf"):
                    return
            time.sleep(0.1)
        pytest.fail("pinger never spread load information")

    def test_validation_refreshes_changed_content(self, pair):
        home, coop = pair
        with home._lock:
            home.engine.policy.force_migrate(
                "/e.html", coop.engine.location, time.monotonic())
        # Pull the document to the co-op.
        outcome = fetch_url(url_of(home, "/e.html"))
        assert outcome.status == 200
        with home._lock:
            home.engine.update_document("/e.html", b"<html>edited</html>")
        key = f"/~migrate/127.0.0.1/{home.port}/e.html"
        deadline = time.time() + 8.0
        while time.time() < deadline:
            with coop._lock:
                try:
                    if coop.engine.store.get(key) == b"<html>edited</html>":
                        return
                except Exception:
                    pass
            time.sleep(0.2)
        pytest.fail("validation never refreshed the co-op copy")


class TestLifecycle:
    def test_double_start_rejected(self, pair):
        home, __ = pair
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            home.start()

    def test_context_manager(self):
        loc = Location("127.0.0.1", free_port())
        engine = DCWSEngine(loc, ServerConfig(), MemoryStore(SITE),
                            entry_points=["/index.html"])
        with ThreadedDCWSServer(engine) as server:
            assert server.wait_ready()
            assert fetch_url(url_of(server, "/e.html")).status == 200
