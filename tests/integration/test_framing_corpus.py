"""Strict-framing regression: a corpus of request-smuggling and
Content-Length desync payloads replayed against both live front ends.

Every entry must be answered with 400 — never executed, never allowed to
shift the framing of what follows.  After each payload the server must
still answer a clean request on a fresh connection (no crashed worker, no
wedged loop), and recoverable entries must not desync a request pipelined
behind them on the same connection.
"""

import socket
import time

import pytest

from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.server.aio import AsyncDCWSServer
from repro.server.engine import DCWSEngine
from repro.server.filestore import MemoryStore
from repro.server.threaded import ThreadedDCWSServer

FRONT_ENDS = {"threaded": ThreadedDCWSServer, "aio": AsyncDCWSServer}

PROBE_BODY = b"<html>probe</html>"
SITE = {"/probe.html": PROBE_BODY}

PIPELINED_GET = b"GET /probe.html HTTP/1.1\r\nHost: h\r\n\r\n"

# (payload, recoverable) — recoverable entries frame no body, so the
# connection survives and a pipelined request behind them is served;
# the rest are framing-ambiguous and must close the connection.
CORPUS = [
    pytest.param(b"POST /x HTTP/1.1\r\nHost: h\r\n"
                 b"Content-Length: -20\r\n\r\n", True,
                 id="negative-length"),
    pytest.param(b"POST /x HTTP/1.1\r\nHost: h\r\n"
                 b"Content-Length: +5\r\n\r\n", True,
                 id="plus-sign"),
    pytest.param(b"POST /x HTTP/1.1\r\nHost: h\r\n"
                 b"Content-Length: 0x10\r\n\r\n", True,
                 id="hex"),
    pytest.param(b"POST /x HTTP/1.1\r\nHost: h\r\n"
                 b"Content-Length: 1_0\r\n\r\n", True,
                 id="underscore"),
    pytest.param(b"POST /x HTTP/1.1\r\nHost: h\r\n"
                 b"Content-Length: 4.2\r\n\r\n", True,
                 id="float"),
    pytest.param(b"POST /x HTTP/1.1\r\nHost: h\r\n"
                 b"Content-Length: 5,5\r\n\r\n", True,
                 id="comma-list"),
    pytest.param(b"POST /x HTTP/1.1\r\nHost: h\r\n"
                 b"Content-Length:\r\n\r\n", True,
                 id="empty-value"),
    pytest.param(b"POST /x HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n"
                 b"Content-Length: 30\r\n\r\nhello", False,
                 id="conflicting-duplicates"),
    pytest.param(b"POST /x HTTP/1.1\r\nHost: h\r\n"
                 b"Content-Length : 5\r\n\r\nhello", False,
                 id="space-before-colon"),
    pytest.param(b"GET /x\tHTTP/1.1\r\nHost: h\r\n\r\n", False,
                 id="tab-in-request-line"),
]


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@pytest.fixture(params=sorted(FRONT_ENDS))
def server(request):
    location = Location("127.0.0.1", free_port())
    engine = DCWSEngine(location, ServerConfig(stats_interval=0.5),
                        MemoryStore(SITE))
    with FRONT_ENDS[request.param](engine, tick_period=0.1) as running:
        assert running.wait_ready()
        yield running


def exchange(port: int, wire: bytes, *, want: bytes = b"",
             timeout: float = 5.0) -> bytes:
    """Send bytes, read until `want` appears (or EOF / quiesce)."""
    with socket.create_connection(("127.0.0.1", port),
                                  timeout=timeout) as raw:
        raw.sendall(wire)
        raw.settimeout(1.0)
        data = b""
        deadline = time.time() + timeout
        while time.time() < deadline:
            if want and want in data:
                break
            try:
                chunk = raw.recv(65536)
            except socket.timeout:
                if data:
                    break
                continue
            if not chunk:
                break
            data += chunk
    return data


@pytest.mark.parametrize("payload, recoverable", CORPUS)
def test_corpus_entry_rejected_and_contained(server, payload, recoverable):
    data = exchange(server.port, payload + PIPELINED_GET,
                    want=PROBE_BODY if recoverable else b"")
    assert data.split(b"\r\n")[0].split()[1:2] == [b"400"], \
        f"expected a 400 first, got: {data[:80]!r}"
    if recoverable:
        # The malformed head frames no body: it is consumed exactly and
        # the pipelined request behind it is served.
        assert PROBE_BODY in data
    else:
        # Framing is ambiguous — the smuggled request must NOT run.
        assert PROBE_BODY not in data

    # Whatever happened, the server is still alive for other clients.
    clean = exchange(server.port, PIPELINED_GET, want=PROBE_BODY)
    assert PROBE_BODY in clean
