"""End-to-end: an entry-gated DCWS cluster under simulated browsing.

Clients arrive at the front door, receive session cookies, and browse
freely — including migrated documents served by co-ops, which validate
the same cluster tokens.  Deep links without a cookie (the replayed
access log) are bounced to the entry point (section 3.1).
"""

from repro.core.config import ServerConfig
from repro.datasets.logs import LogRecord
from repro.datasets.synthetic import build_synthetic_site
from repro.sim.cluster import ClusterConfig, SimCluster
from repro.sim.replay import attach_replay


def gated_cluster(prewarm=True, clients=16):
    site = build_synthetic_site(pages=20, images=6, fanout=3, seed=4)
    config = ClusterConfig(
        servers=2, clients=clients, duration=30.0, sample_interval=10.0,
        seed=7, prewarm=prewarm,
        server_config=ServerConfig(
            stats_interval=2.0, pinger_interval=4.0,
            validation_interval=24.0,
            entry_gate_secret="cluster-secret", entry_gate_ttl=600.0))
    return site, SimCluster(site, config)


class TestGatedBrowsing:
    def test_walkers_acquire_cookies_and_browse(self):
        site, cluster = gated_cluster()
        result = cluster.run()
        # Clients did real browsing (past the entry point).
        assert result.client_stats.steps > result.client_stats.sequences
        # Every client holds a session cookie by the end.
        active = [c for c in cluster.clients if c.stats.requests > 0]
        assert active
        assert all("dcws_session" in c.cookies for c in active)

    def test_migrated_documents_served_to_cookied_clients(self):
        site, cluster = gated_cluster()
        result = cluster.run()
        coop = cluster.servers["server1:80"].engine
        # The co-op actually served hosted documents (gate let them in).
        assert any(h.hits > 0 for h in coop.hosted.values())
        assert result.client_stats.errors == 0

    def test_cookieless_deep_links_bounced_to_front_door(self):
        site, cluster = gated_cluster(clients=4)
        internal = [name for name in sorted(site.documents)
                    if name not in site.entry_points][:8]
        records = [LogRecord(time=float(i), client="bot", path=name)
                   for i, name in enumerate(internal)]
        replayer = attach_replay(cluster, records)
        cluster.run(extra_setup=lambda c: replayer.start())
        # Every deep link got a 302 to the entry point; the replayer
        # followed it and landed on the front door (a 200).
        assert 302 in replayer.stats.statuses
        assert replayer.stats.redirected >= len(records)

    def test_throughput_comparable_to_ungated(self):
        site, gated = gated_cluster(clients=24)
        gated_result = gated.run()
        config = ClusterConfig(
            servers=2, clients=24, duration=30.0, sample_interval=10.0,
            seed=7, prewarm=True,
            server_config=ServerConfig(stats_interval=2.0,
                                       pinger_interval=4.0,
                                       validation_interval=24.0))
        open_result = SimCluster(build_synthetic_site(
            pages=20, images=6, fanout=3, seed=4), config).run()
        # The gate costs one cookie issue per sequence, nothing more.
        assert gated_result.steady_cps() > open_result.steady_cps() * 0.8
