"""Persistent-connection socket path, end to end over real sockets.

Covers the keep-alive front-end (multiple and pipelined requests per
connection, idle timeout, per-connection cap, Connection semantics), the
request-read hardening, the lock-free drop counter, and pooled
server-to-server channels.
"""

import socket
import time

import pytest

from repro.client.realclient import fetch_url, read_framed_response
from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.http.urls import URL
from repro.server.engine import DCWSEngine
from repro.server.filestore import MemoryStore
from repro.server.threaded import ThreadedDCWSServer

SITE = {
    "/index.html": b'<html><a href="d.html">D</a></html>',
    "/d.html": b'<html><a href="e.html">E</a></html>',
    "/e.html": b"<html>leaf</html>",
}


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def start_server(**config_kwargs) -> ThreadedDCWSServer:
    loc = Location("127.0.0.1", free_port())
    config = ServerConfig(stats_interval=60.0, pinger_interval=60.0,
                          **config_kwargs)
    engine = DCWSEngine(loc, config, MemoryStore(dict(SITE)),
                        entry_points=["/index.html"])
    server = ThreadedDCWSServer(engine)
    server.start()
    return server


@pytest.fixture()
def server():
    srv = start_server()
    try:
        yield srv
    finally:
        srv.stop()


def request_bytes(target: str, *, keep_alive=True, version="HTTP/1.0"):
    connection = "keep-alive" if keep_alive else "close"
    return (f"GET {target} {version}\r\n"
            f"Connection: {connection}\r\n\r\n").encode("latin-1")


def roundtrip(sock: socket.socket, buffer: bytearray, target: str, **kwargs):
    sock.sendall(request_bytes(target, **kwargs))
    response, __ = read_framed_response(sock, buffer)
    return response


class TestKeepAliveFrontEnd:
    def test_many_requests_one_connection(self, server):
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=5.0) as sock:
            buffer = bytearray()
            for __ in range(6):
                response = roundtrip(sock, buffer, "/d.html")
                assert response.status == 200
                assert response.headers.has_token("Connection", "keep-alive")
                assert b"e.html" in response.body
        assert server.connections_accepted == 1
        assert server.engine.stats.requests == 6

    def test_pipelined_requests_each_answered(self, server):
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=5.0) as sock:
            sock.sendall(request_bytes("/d.html") + request_bytes("/e.html")
                         + request_bytes("/index.html"))
            buffer = bytearray()
            bodies = []
            for __ in range(3):
                response, __framed = read_framed_response(sock, buffer)
                assert response.status == 200
                bodies.append(response.body)
        assert bodies == [SITE["/d.html"], SITE["/e.html"],
                          SITE["/index.html"]]
        assert server.connections_accepted == 1

    def test_connection_close_honored(self, server):
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=5.0) as sock:
            response = roundtrip(sock, bytearray(), "/e.html",
                                 keep_alive=False)
            assert response.status == 200
            assert response.headers.has_token("Connection", "close")
            assert sock.recv(1) == b""  # server closed

    def test_http11_defaults_to_keep_alive(self, server):
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=5.0) as sock:
            sock.sendall(b"GET /e.html HTTP/1.1\r\nHost: h\r\n\r\n")
            buffer = bytearray()
            first, __ = read_framed_response(sock, buffer)
            assert first.headers.has_token("Connection", "keep-alive")
            sock.sendall(b"GET /e.html HTTP/1.1\r\nHost: h\r\n\r\n")
            second, __ = read_framed_response(sock, buffer)
            assert second.status == 200
        assert server.connections_accepted == 1

    def test_keep_alive_disabled_by_config(self):
        srv = start_server(keep_alive=False)
        try:
            with socket.create_connection(("127.0.0.1", srv.port),
                                          timeout=5.0) as sock:
                response = roundtrip(sock, bytearray(), "/e.html")
                assert response.headers.has_token("Connection", "close")
                assert sock.recv(1) == b""
        finally:
            srv.stop()

    def test_idle_timeout_closes_connection(self):
        srv = start_server(keep_alive_timeout=0.3)
        try:
            with socket.create_connection(("127.0.0.1", srv.port),
                                          timeout=5.0) as sock:
                assert roundtrip(sock, bytearray(), "/e.html").status == 200
                sock.settimeout(3.0)
                assert sock.recv(1) == b""  # closed after the idle window
        finally:
            srv.stop()

    def test_per_connection_request_cap(self):
        srv = start_server(keep_alive_max_requests=2)
        try:
            with socket.create_connection(("127.0.0.1", srv.port),
                                          timeout=5.0) as sock:
                buffer = bytearray()
                first = roundtrip(sock, buffer, "/e.html")
                assert first.headers.has_token("Connection", "keep-alive")
                second = roundtrip(sock, buffer, "/e.html")
                assert second.headers.has_token("Connection", "close")
                assert sock.recv(1) == b""
        finally:
            srv.stop()


class TestRequestReadHardening:
    def test_truncated_body_rejected_with_400(self, server):
        """Regression: a peer closing mid-body used to yield a silently
        truncated request that was then dispatched."""
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=5.0) as sock:
            sock.sendall(b"POST /e.html HTTP/1.0\r\n"
                         b"Content-Length: 50\r\n\r\npartial")
            sock.shutdown(socket.SHUT_WR)
            response, __ = read_framed_response(sock, bytearray())
        assert response.status == 400

    def test_garbage_still_answered_400(self, server):
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=5.0) as sock:
            sock.sendall(b"NOT-HTTP\r\n\r\n")
            data = sock.recv(65536)
        assert b"400" in data.split(b"\r\n")[0]


class TestLockFreeDropCounter:
    def test_503_sent_while_engine_lock_is_held(self):
        """Regression: recording a drop used to grab the engine lock on the
        front-end thread, stalling the accept loop under exactly the
        overload that causes drops."""
        loc = Location("127.0.0.1", free_port())
        config = ServerConfig(worker_threads=1, socket_queue_length=1,
                              stats_interval=60.0, pinger_interval=60.0)
        engine = DCWSEngine(loc, config, MemoryStore(dict(SITE)))
        srv = ThreadedDCWSServer(engine, request_timeout=5.0,
                                 tick_period=0.1)
        srv.start()
        held = []
        try:
            srv._lock.acquire()
            try:
                # Stall the only worker and fill the one-slot queue.
                for __ in range(2):
                    held.append(socket.create_connection(
                        ("127.0.0.1", srv.port), timeout=5.0))
                    time.sleep(0.2)
                # The next connection must be 503-dropped by the front-end
                # even though the engine lock is held.
                extra = socket.create_connection(("127.0.0.1", srv.port),
                                                 timeout=5.0)
                held.append(extra)
                extra.settimeout(2.0)
                data = extra.recv(65536)
                assert b"503" in data.split(b"\r\n")[0]
                assert srv._drops_recorded >= 1
            finally:
                srv._lock.release()
            # Once the lock is free, the periodic thread drains the counter
            # into the engine metrics.
            deadline = time.time() + 5.0
            while time.time() < deadline:
                with srv._lock:
                    if engine.metrics.drops.lifetime_count >= 1:
                        break
                time.sleep(0.05)
            else:
                pytest.fail("drop counter never drained into metrics")
        finally:
            for connection in held:
                try:
                    connection.close()
                except OSError:
                    pass
            srv.stop()


class TestServerToServerPooling:
    def test_pool_reuses_channels_across_transfers(self):
        """Channel-reuse proof: server-to-server connection opens stay
        below the number of transfers (pulls + validations + pings)."""
        home_loc = Location("127.0.0.1", free_port())
        coop_loc = Location("127.0.0.1", free_port())
        config = ServerConfig(stats_interval=0.5, pinger_interval=0.5,
                              validation_interval=1.0,
                              migration_hit_threshold=1.0)
        home_engine = DCWSEngine(home_loc, config, MemoryStore(dict(SITE)),
                                 entry_points=["/index.html"],
                                 peers=[coop_loc])
        coop_engine = DCWSEngine(coop_loc, config, MemoryStore(),
                                 peers=[home_loc])
        home = ThreadedDCWSServer(home_engine, tick_period=0.1)
        coop = ThreadedDCWSServer(coop_engine, tick_period=0.1)
        home.start()
        coop.start()
        try:
            with home._lock:
                home.engine.policy.force_migrate("/d.html", coop_loc,
                                                 time.monotonic())
                home.engine.policy.force_migrate("/e.html", coop_loc,
                                                 time.monotonic())
            # Follow the redirects: each first hit makes the co-op pull
            # the bytes from home over a pooled channel.
            for path in ("/d.html", "/e.html"):
                outcome = fetch_url(URL("127.0.0.1", home.port, path))
                assert outcome.status == 200
            # Let validations and pings accumulate on the same channels.
            deadline = time.time() + 8.0
            while time.time() < deadline and coop.pool.requests < 5:
                time.sleep(0.1)
            assert coop.pool.requests >= 5
            assert coop.pool.opens < coop.pool.requests
            assert coop.pool.reuses >= 1
        finally:
            home.stop()
            coop.stop()
