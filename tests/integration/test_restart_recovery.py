"""A real server restart keeps its migration state (persistence)."""

import socket
import time

import pytest

from repro.client.realclient import fetch_url
from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.http.urls import URL
from repro.server.aio import AsyncDCWSServer
from repro.server.engine import DCWSEngine
from repro.server.filestore import MemoryStore
from repro.server.threaded import ThreadedDCWSServer

SITE = {
    "/index.html": b'<html><a href="d.html">D</a></html>',
    "/d.html": b"<html>doc</html>",
}

#: Both socket front ends host the same engine and the same persistence
#: hooks; restart recovery must hold for each.
FRONT_ENDS = [
    pytest.param(ThreadedDCWSServer, id="threaded"),
    pytest.param(AsyncDCWSServer, id="aio"),
]


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@pytest.mark.parametrize("server_class", FRONT_ENDS)
def test_restart_preserves_redirects(tmp_path, server_class):
    port = free_port()
    coop = Location("127.0.0.1", free_port())
    snapshot = str(tmp_path / "home.snapshot")
    store = MemoryStore(SITE)  # shared between incarnations (same "disk")
    config = ServerConfig(stats_interval=60.0, pinger_interval=60.0)

    def make_server():
        engine = DCWSEngine(Location("127.0.0.1", port), config, store,
                            entry_points=["/index.html"], peers=[coop])
        return server_class(engine, snapshot_path=snapshot,
                            tick_period=0.1)

    first = make_server()
    first.start()
    try:
        with first._lock:
            first.engine.policy.force_migrate("/d.html", coop,
                                              time.monotonic())
        response = fetch_url(URL("127.0.0.1", port, "/d.html"),
                             max_redirects=0)
        assert response.status == 301
    finally:
        first.stop()  # writes the snapshot

    second = make_server()
    second.start()
    try:
        # The restarted server still knows /d.html lives on the co-op.
        response = fetch_url(URL("127.0.0.1", port, "/d.html"),
                             max_redirects=0)
        assert response.status == 301
        with second._lock:
            assert second.engine.policy.migrated_names() == ["/d.html"]
    finally:
        second.stop()


def test_restart_without_snapshot_forgets(tmp_path):
    port = free_port()
    coop = Location("127.0.0.1", free_port())
    store = MemoryStore(SITE)
    config = ServerConfig(stats_interval=60.0, pinger_interval=60.0)
    engine = DCWSEngine(Location("127.0.0.1", port), config, store,
                        entry_points=["/index.html"], peers=[coop])
    first = ThreadedDCWSServer(engine, tick_period=0.1)  # no snapshot_path
    first.start()
    try:
        with first._lock:
            first.engine.policy.force_migrate("/d.html", coop,
                                              time.monotonic())
    finally:
        first.stop()

    engine2 = DCWSEngine(Location("127.0.0.1", port), config, store,
                         entry_points=["/index.html"], peers=[coop])
    second = ThreadedDCWSServer(engine2, tick_period=0.1)
    second.start()
    try:
        response = fetch_url(URL("127.0.0.1", port, "/d.html"),
                             max_redirects=0)
        # Amnesia: the fresh graph thinks the document is local again.
        assert response.status == 200
    finally:
        second.stop()
