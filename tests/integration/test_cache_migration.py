"""Cache invalidation across migration events.

The serve-path caches (link templates, byte cache, rendered-response
cache) must never outlive the state they were rendered from: a
migrate -> revoke -> re-migrate cycle has to produce fresh hyperlinks and
fresh bytes at every step, both on a bare engine and through the threaded
server over real sockets.
"""

import socket
import time

import pytest

from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.http.messages import Request
from repro.server.engine import DCWSEngine
from repro.server.filestore import MemoryStore
from repro.server.threaded import ThreadedDCWSServer
from repro.client.realclient import fetch_url, http_fetch
from repro.http.urls import URL

HOME = Location("home", 8001)
COOP = Location("coop", 8002)

SITE = {
    "/index.html": b'<html><a href="d.html">D</a><img src="i.gif"></html>',
    "/d.html": b'<html><a href="e.html">E</a></html>',
    "/e.html": b"<html>leaf</html>",
    "/i.gif": b"GIF89a" + b"x" * 100,
}

MIGRATED_LINK = b"http://coop:8002/~migrate/home/8001/d.html"


def make_engine(**config_kwargs):
    config_kwargs.setdefault("stats_interval", 1.0)
    config_kwargs.setdefault("migration_hit_threshold", 1.0)
    engine = DCWSEngine(HOME, ServerConfig(**config_kwargs),
                        MemoryStore(SITE), entry_points=["/index.html"],
                        peers=[COOP])
    engine.initialize(0.0)
    return engine


def body_of(engine, path, now):
    reply = engine.handle_request(Request(method="GET", target=path), now)
    return reply.response.status, reply.response.body


class TestEngineMigrationCycle:
    """Unit level: one engine, the full migrate/revoke/re-migrate cycle."""

    @pytest.mark.parametrize("link_templates", [True, False])
    def test_index_links_track_every_transition(self, link_templates):
        engine = make_engine(link_templates=link_templates)
        # Warm every cache layer with the clean rendering.
        for now in (1.0, 1.1):
            status, body = body_of(engine, "/index.html", now)
            assert status == 200 and b'"d.html"' in body

        engine.policy.force_migrate("/d.html", COOP, now=2.0)
        for now in (2.1, 2.2):            # second fetch rides the cache
            status, body = body_of(engine, "/index.html", now)
            assert status == 200
            assert MIGRATED_LINK in body
            assert b'"d.html"' not in body

        engine.policy.revoke("/d.html")
        for now in (3.0, 3.1):
            status, body = body_of(engine, "/index.html", now)
            assert status == 200
            # Revocation rewrites the migrate URL back to home's absolute
            # URL (not the original relative form).
            assert b"http://home:8001/d.html" in body
            assert b"~migrate" not in body

        engine.policy.force_migrate("/d.html", COOP, now=4.0)
        for now in (4.1, 4.2):
            status, body = body_of(engine, "/index.html", now)
            assert status == 200
            assert MIGRATED_LINK in body

    def test_document_itself_tracks_every_transition(self):
        engine = make_engine()
        assert body_of(engine, "/d.html", 1.0)[0] == 200
        engine.policy.force_migrate("/d.html", COOP, now=2.0)
        assert body_of(engine, "/d.html", 2.1)[0] == 301
        engine.policy.revoke("/d.html")
        status, body = body_of(engine, "/d.html", 3.0)
        assert status == 200
        assert b"e.html" in body
        engine.policy.force_migrate("/d.html", COOP, now=4.0)
        assert body_of(engine, "/d.html", 4.1)[0] == 301

    def test_content_update_during_cycle_never_serves_old_bytes(self):
        engine = make_engine()
        body_of(engine, "/d.html", 1.0)
        engine.policy.force_migrate("/d.html", COOP, now=2.0)
        engine.policy.revoke("/d.html")
        engine.update_document("/d.html", b'<html><a href="e.html">E2</a></html>')
        status, body = body_of(engine, "/d.html", 3.0)
        assert status == 200
        assert b"E2" in body

    def test_template_survives_cycle_without_reparse(self):
        engine = make_engine()
        body_of(engine, "/index.html", 1.0)
        builds_before = engine.stats.template_builds
        engine.policy.force_migrate("/d.html", COOP, now=2.0)
        body_of(engine, "/index.html", 2.1)
        engine.policy.revoke("/d.html")
        body_of(engine, "/index.html", 3.0)
        engine.policy.force_migrate("/d.html", COOP, now=4.0)
        body_of(engine, "/index.html", 4.1)
        # Three regenerations, all spliced from the standing template.
        assert engine.stats.reconstructions == 3
        assert engine.stats.splices == 3
        assert engine.stats.template_builds == builds_before


# ---------------------------------------------------------------------------
# Threaded-server integration: the same cycle over real sockets.
# ---------------------------------------------------------------------------


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@pytest.fixture()
def pair():
    """A running (home, coop) ThreadedDCWSServer pair on loopback."""
    home_loc = Location("127.0.0.1", free_port())
    coop_loc = Location("127.0.0.1", free_port())
    config = ServerConfig(stats_interval=0.5, pinger_interval=0.5,
                          validation_interval=1.0,
                          migration_hit_threshold=1.0)
    home_engine = DCWSEngine(home_loc, config, MemoryStore(SITE),
                             entry_points=["/index.html"], peers=[coop_loc])
    coop_engine = DCWSEngine(coop_loc, config, MemoryStore(),
                             peers=[home_loc])
    home = ThreadedDCWSServer(home_engine, tick_period=0.1)
    coop = ThreadedDCWSServer(coop_engine, tick_period=0.1)
    home.start()
    coop.start()
    try:
        yield home, coop
    finally:
        home.stop()
        coop.stop()


def sock_get(server: ThreadedDCWSServer, path: str):
    response = http_fetch(Location("127.0.0.1", server.port),
                          Request(method="GET", target=path))
    return response.status, response.body


def migrated_link(home, coop) -> bytes:
    return (f"http://127.0.0.1:{coop.port}/~migrate/127.0.0.1/"
            f"{home.port}/d.html").encode()


class TestMigrationCycleOverSockets:
    def test_migrate_revoke_remigrate_cycle(self, pair):
        home, coop = pair
        link = migrated_link(home, coop)

        status, body = sock_get(home, "/index.html")
        assert status == 200 and b'"d.html"' in body
        sock_get(home, "/index.html")   # warm the response cache

        with home._lock:
            home.engine.policy.force_migrate(
                "/d.html", coop.engine.location, time.monotonic())
        for __ in range(2):             # fresh render, then cached render
            status, body = sock_get(home, "/index.html")
            assert status == 200
            assert link in body
            assert b'"d.html"' not in body
        # The old URL redirects, and following it works end to end.
        assert sock_get(home, "/d.html")[0] == 301
        assert fetch_url(URL("127.0.0.1", home.port, "/d.html")).status == 200

        with home._lock:
            home.engine.policy.revoke("/d.html")
        home_link = f"http://127.0.0.1:{home.port}/d.html".encode()
        for __ in range(2):
            status, body = sock_get(home, "/index.html")
            assert status == 200
            assert home_link in body
            assert b"~migrate" not in body
        status, body = sock_get(home, "/d.html")
        assert status == 200
        assert b"e.html" in body

        with home._lock:
            home.engine.policy.force_migrate(
                "/d.html", coop.engine.location, time.monotonic())
        for __ in range(2):
            status, body = sock_get(home, "/index.html")
            assert status == 200
            assert link in body
        assert sock_get(home, "/d.html")[0] == 301

    def test_remigrated_content_refreshes_on_coop(self, pair):
        """The co-op's hosted/response caches must not pin the first pull's
        bytes across revoke -> edit -> re-migrate."""
        home, coop = pair
        now = time.monotonic()
        with home._lock:
            home.engine.policy.force_migrate(
                "/d.html", coop.engine.location, now)
        assert fetch_url(URL("127.0.0.1", home.port, "/d.html")).status == 200

        with home._lock:
            home.engine.policy.revoke("/d.html")
        home.engine.update_document(
            "/d.html", b'<html><a href="e.html">EDITED</a></html>')
        with home._lock:
            home.engine.policy.force_migrate(
                "/d.html", coop.engine.location, time.monotonic())

        key = f"/~migrate/127.0.0.1/{home.port}/d.html"
        deadline = time.time() + 10.0
        body = b""
        while time.time() < deadline:
            status, body = sock_get(coop, key)
            if status == 200 and b"EDITED" in body:
                break
            time.sleep(0.2)
        assert b"EDITED" in body

    def test_deferred_regeneration_serves_spliced_content(self, pair):
        """Dirty documents regenerate off the engine lock (splice path) and
        still serve the rewritten hyperlinks."""
        home, coop = pair
        with home._lock:
            home.engine.policy.force_migrate(
                "/d.html", coop.engine.location, time.monotonic())
        status, body = sock_get(home, "/index.html")
        assert status == 200
        assert migrated_link(home, coop) in body
        assert home.engine.stats.splices >= 1
        assert home.engine.stats.reconstructions >= 1
