"""End-to-end simulated scenarios exercising whole-system behaviour."""

import pytest

from repro.core.config import ServerConfig
from repro.datasets.synthetic import build_synthetic_site
from repro.sim.cluster import ClusterConfig, SimCluster


def make_cluster(site=None, **kwargs):
    site = site or build_synthetic_site(pages=30, images=10, fanout=4, seed=6)
    defaults = dict(servers=3, clients=24, duration=40.0, sample_interval=5.0,
                    seed=4, server_config=ServerConfig().scaled(0.15),
                    prewarm=True)
    defaults.update(kwargs)
    return site, SimCluster(site, ClusterConfig(**defaults))


class TestContentPropagation:
    def test_author_edit_reaches_coop_copies(self):
        site, cluster = make_cluster()
        home = cluster.servers["server0:80"].engine
        updated = {"done": False}

        def edit_later(c):
            def apply_edit():
                # Pick a migrated HTML document and change it.
                for record in home.graph.migrated_documents():
                    if record.is_html:
                        home.update_document(
                            record.name, b"<html>edited content</html>")
                        updated["name"] = record.name
                        updated["loc"] = record.location
                        updated["done"] = True
                        return
            c.loop.schedule(10.0, apply_edit)

        cluster.run(extra_setup=edit_later)
        assert updated["done"]
        coop = cluster.servers[str(updated["loc"])].engine
        key = f"/~migrate/server0/80{updated['name']}"
        # The validation interval (18 s scaled) fits the run several times.
        assert coop.store.get(key) == b"<html>edited content</html>"

    def test_revocation_propagates_to_coop(self):
        # High imbalance tolerance: the policy will not re-migrate the
        # revoked document during the run, isolating revocation itself.
        config = ServerConfig(stats_interval=1.5, pinger_interval=3.0,
                              validation_interval=18.0,
                              imbalance_tolerance=5.0)
        site, cluster = make_cluster(duration=60.0, server_config=config)
        home = cluster.servers["server0:80"].engine
        state = {}

        def revoke_later(c):
            def apply():
                record = next((r for r in home.graph.migrated_documents()
                               if r.is_html), None)
                assert record is not None
                state["name"] = record.name
                state["loc"] = record.location
                home.policy.revoke(record.name)
            c.loop.schedule(10.0, apply)

        cluster.run(extra_setup=revoke_later)
        assert home.graph.get(state["name"]).location == home.location
        # The home now serves the document directly (no redirect).
        from repro.http.messages import Request

        reply = home.handle_request(Request("GET", state["name"]), 1e9)
        assert reply.response.status == 200
        # The old co-op may retain its copy for home-crash robustness
        # (section 4.5: "should not throw away any data until absolutely
        # necessary") — but if it does, validation kept it consistent.
        coop = cluster.servers[str(state["loc"])].engine
        key = f"/~migrate/server0/80{state['name']}"
        hosted = coop.hosted.get(key)
        if hosted is not None and hosted.fetched:
            assert coop.store.get(key) == home.store.get(state["name"])


class TestCrashRecovery:
    def test_crash_then_recover_rejoins(self):
        site, cluster = make_cluster(duration=80.0, servers=3)
        home = cluster.servers["server0:80"].engine

        def schedule(c):
            c.loop.schedule(15.0, lambda: c.crash_server(1))
            c.loop.schedule(45.0, lambda: c.recover_server(1))

        result = cluster.run(extra_setup=schedule)
        # Crash was detected and documents recalled...
        assert result.revocations > 0
        assert any(e.kind == "peer_dead"
                   for e in home.log.events(kind="peer_dead"))
        # ...and the cluster serves again after the recovery.
        post_recovery = [s for s in result.series.samples if s.time > 55.0]
        assert post_recovery
        assert all(sample.cps > 0 for sample in post_recovery)

    def test_event_log_tells_the_story(self):
        site, cluster = make_cluster(prewarm=False, duration=60.0,
                                     clients=48)
        result = cluster.run()
        home = cluster.servers["server0:80"].engine
        if result.migrations:
            assert home.log.count("migrate") + home.log.count("remigrate") \
                >= result.migrations - home.log.count("replicate")
        coops = [s.engine for k, s in cluster.servers.items()
                 if k != "server0:80"]
        assert sum(e.log.count("pull") for e in coops) == \
            sum(e.stats.pulls_completed for e in coops)


class TestEntryPointAblation:
    def test_unprotected_entry_points_migrate_and_redirect(self):
        site = build_synthetic_site(pages=30, images=0, fanout=4, seed=6)
        config = ServerConfig(stats_interval=1.5, pinger_interval=3.0,
                              validation_interval=18.0,
                              migration_hit_threshold=1.0,
                              protect_entry_points=False)
        __, cluster = make_cluster(site=site, prewarm=False, duration=60.0,
                                   clients=48, server_config=config)
        result = cluster.run()
        home = cluster.servers["server0:80"].engine
        entry = home.graph.get(site.entry_points[0])
        # Without step 2's protection, the hottest document — the entry
        # point — is eligible; once migrated every sequence start pays a
        # redirect ("burdensome request redirections", section 4.1).
        if entry.location != home.location:
            assert result.redirects_served > 0


class TestMultiSiteFederation:
    def test_two_sites_balance_independently(self):
        site_a = build_synthetic_site(pages=40, images=10, fanout=4,
                                      seed=1, name="a")
        site_b = build_synthetic_site(pages=10, images=4, fanout=3,
                                      seed=2, name="b")
        config = ClusterConfig(servers=3, clients=30, duration=40.0,
                               sample_interval=10.0, seed=9,
                               server_config=ServerConfig().scaled(0.15),
                               prewarm=True)
        cluster = SimCluster([site_a, site_b], config)
        result = cluster.run()
        engine_a = cluster.servers["server0:80"].engine
        engine_b = cluster.servers["server1:80"].engine
        # Each home migrated some of its own documents...
        assert engine_a.graph.migrated_documents()
        assert engine_b.graph.migrated_documents()
        # ...and entry points stayed put.
        assert all(r.location == engine_a.location
                   for r in engine_a.graph.entry_points())
        assert all(r.location == engine_b.location
                   for r in engine_b.graph.entry_points())
        assert result.client_stats.requests > 500
