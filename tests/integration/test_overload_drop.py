"""Real-socket overload behaviour: the front-end's graceful 503 drop."""

import socket
import time

import pytest

from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.server.engine import DCWSEngine
from repro.server.filestore import MemoryStore
from repro.server.threaded import ThreadedDCWSServer


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@pytest.fixture()
def tiny_server():
    """One worker, queue length one: trivially overloadable."""
    loc = Location("127.0.0.1", free_port())
    config = ServerConfig(worker_threads=1, socket_queue_length=1,
                          stats_interval=60.0, pinger_interval=60.0)
    engine = DCWSEngine(loc, config, MemoryStore(
        {"/a.html": b"<html>tiny</html>"}))
    server = ThreadedDCWSServer(engine, request_timeout=3.0)
    server.start()
    try:
        yield server
    finally:
        server.stop()


def open_stalled_connection(port: int) -> socket.socket:
    """Connect but send nothing: occupies a worker until its timeout."""
    connection = socket.create_connection(("127.0.0.1", port), timeout=5.0)
    return connection


def test_queue_overflow_answers_503(tiny_server):
    port = tiny_server.port
    held = []
    try:
        # First connection occupies the only worker (blocked reading);
        # second fills the queue; give the front-end time to hand off.
        for __ in range(2):
            held.append(open_stalled_connection(port))
            time.sleep(0.2)
        # The third must be dropped gracefully with a 503 (section 5.2).
        extra = socket.create_connection(("127.0.0.1", port), timeout=5.0)
        held.append(extra)
        data = extra.recv(65536)
        assert b"503" in data.split(b"\r\n")[0]
        assert b"Service Unavailable" in data
    finally:
        for connection in held:
            try:
                connection.close()
            except OSError:
                pass


def test_drop_recorded_in_metrics(tiny_server):
    port = tiny_server.port
    held = []
    try:
        for __ in range(3):
            held.append(open_stalled_connection(port))
            time.sleep(0.2)
        deadline = time.time() + 5.0
        while time.time() < deadline:
            with tiny_server._lock:
                if tiny_server.engine.metrics.drops.lifetime_count >= 1:
                    return
            time.sleep(0.1)
        pytest.fail("drop was never recorded in the engine metrics")
    finally:
        for connection in held:
            try:
                connection.close()
            except OSError:
                pass
