"""Crash-recovery harness: SIGKILL a real server, recover, fsck.

The durability contract (DESIGN.md): after a crash, a restarted server
recovers to a *prefix-consistent superset* of its last acknowledged
state — every mutation acknowledged before the kill is present, at most
the single in-flight mutation may additionally appear, and the invariant
checker (:mod:`repro.server.fsck`) passes.  No forgotten migrations, no
lost documents.

The harness runs a real :class:`ThreadedDCWSServer` subprocess with
``wal_fsync="always"`` over a real on-disk store and journal.  The
parent drives a seeded mutation plan step by step over a stdin/stdout
handshake (``GO`` → mutate → ``ACK``), SIGKILLs the child at
seed-chosen acknowledgement counts, restarts the server in *dump* mode
(the same recovery path production start() runs), and compares the
recovered state against a shadow engine that applied the same
acknowledged prefix in-process.

A second suite injects torn and failed writes *on the journal file
itself* with a :class:`FaultPlan` — the power-loss-mid-append signature
— and asserts the same contract.  The driving seed is printed on
failure so CI runs replay locally (``REPRO_FAULT_SEED``).
"""

import json
import os
import random
import signal
import socket
import subprocess
import sys
import time

import pytest

import repro
from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.faults import FaultPlan, FaultRule, InjectedDiskError
from repro.server.engine import DCWSEngine
from repro.server.filestore import DiskStore, MemoryStore
from repro.server.fsck import check_engine
from repro.server.threaded import ThreadedDCWSServer

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

PAGES = [f"/p{i}.html" for i in range(4)]
SITE = dict(
    {"/index.html": ("<html>" + "".join(
        f'<a href="p{i}.html">P{i}</a>' for i in range(4))
        + "</html>").encode()},
    **{f"/p{i}.html": f"<html>page {i}</html>".encode() for i in range(4)})

COOP = Location("coop", 9999)  # never contacted: migrations are lazy


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def make_plan(seed: int, steps: int = 18):
    """A seeded mutation plan over PAGES: updates, migrations, revokes.

    Tracks which pages are currently migrated so every step is legal at
    the moment it runs — the same sequence is replayed by the child, by
    the shadow engine, and (through the journal) by recovery.
    """
    rng = random.Random(seed)
    migrated = set()
    plan = []
    for __ in range(steps):
        choices = ["update"]
        if len(migrated) < len(PAGES):
            choices += ["migrate", "migrate"]
        if migrated:
            choices.append("revoke")
        kind = rng.choice(choices)
        if kind == "migrate":
            name = rng.choice(sorted(set(PAGES) - migrated))
            migrated.add(name)
        elif kind == "revoke":
            name = rng.choice(sorted(migrated))
            migrated.discard(name)
        else:
            name = rng.choice(PAGES + ["/index.html"])
        plan.append([kind, name])
    return plan


def apply_step(engine, step, now):
    kind, name = step
    engine._clock = now
    if kind == "migrate":
        engine.policy.force_migrate(name, COOP, now=now)
    elif kind == "revoke":
        engine.policy.revoke(name)
    else:
        engine.update_document(name, engine.store.get(name) + b"<!--u-->")


def durable_state(engine):
    """The replay-comparable state (timestamps excluded).  The engine's
    own location is normalized to ``@home`` so states from engines on
    different ports (the shadow vs the real subprocess) compare."""
    home = str(engine.location)

    def loc(value):
        return "@home" if str(value) == home else str(value)

    migrations = {}
    for name in engine.policy.migrated_names():
        migrations[name] = loc(engine.policy.restored(name)[0])
    documents = {record.name: [loc(record.location), record.version]
                 for record in engine.graph.documents()}
    return {"migrations": migrations, "documents": documents}


def shadow_states(plan, acked):
    """Expected state after the acked prefix, and after one more step
    (the possibly-landed in-flight mutation)."""
    states = []
    for steps in (acked, min(acked + 1, len(plan))):
        engine = DCWSEngine(Location("127.0.0.1", 1), ServerConfig(),
                            MemoryStore(SITE),
                            entry_points=["/index.html"], peers=[COOP])
        engine.initialize(0.0)
        for index, step in enumerate(plan[:steps]):
            apply_step(engine, step, float(index + 1))
        states.append(durable_state(engine))
    return states


CHILD_SCRIPT = """\
import json, sys, time

from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.server.engine import DCWSEngine
from repro.server.filestore import DiskStore
from repro.server.fsck import check_engine
from repro.server.threaded import ThreadedDCWSServer

mode, root, snapshot, journal, port = sys.argv[1:6]
plan = json.load(open(sys.argv[6])) if len(sys.argv) > 6 else []
coop = Location("coop", 9999)
config = ServerConfig(stats_interval=60.0, pinger_interval=60.0,
                      validation_interval=60.0, wal_fsync="always")
engine = DCWSEngine(Location("127.0.0.1", int(port)), config,
                    DiskStore(root), entry_points=["/index.html"],
                    peers=[coop])
server = ThreadedDCWSServer(engine, tick_period=0.05,
                            snapshot_path=snapshot, journal_path=journal)
server.start()

if mode == "dump":
    home = str(engine.location)
    loc = lambda value: "@home" if str(value) == home else str(value)
    with server._lock:
        migrations = {n: loc(engine.policy.restored(n)[0])
                      for n in engine.policy.migrated_names()}
        documents = {r.name: [loc(r.location), r.version]
                     for r in engine.graph.documents()}
        state = {"migrations": migrations, "documents": documents,
                 "violations": check_engine(engine),
                 "recovery": engine.recovery.as_dict()}
    print(json.dumps(state), flush=True)
    server.stop()
    sys.exit(0)

print("READY", flush=True)
acked = 0
for step in plan:
    line = sys.stdin.readline().strip()
    while line == "CKPT":
        with server._lock:
            server._checkpoint_state(time.monotonic())
        print("CKPTOK", flush=True)
        line = sys.stdin.readline().strip()
    if line != "GO":
        break
    now = time.monotonic()
    with server._lock:
        engine._clock = now
        kind, name = step
        if kind == "migrate":
            engine.policy.force_migrate(name, coop, now=now)
        elif kind == "revoke":
            engine.policy.revoke(name)
        else:
            engine.update_document(name,
                                   engine.store.get(name) + b"<!--u-->")
    acked += 1
    print("ACK %d" % acked, flush=True)
while True:
    time.sleep(1.0)
"""


def spawn(tmp_path, mode, root, snapshot, journal, port, plan_file=None):
    script = tmp_path / "child.py"
    if not script.exists():
        script.write_text(CHILD_SCRIPT)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    argv = [sys.executable, str(script), mode, root, snapshot, journal,
            str(port)]
    if plan_file is not None:
        argv.append(plan_file)
    return subprocess.Popen(argv, env=env, stdin=subprocess.PIPE,
                            stdout=subprocess.PIPE, text=True)


def dump_recovered(tmp_path, root, snapshot, journal, port):
    proc = spawn(tmp_path, "dump", root, snapshot, journal, port)
    try:
        line = proc.stdout.readline()
        assert line.strip(), f"dump produced no output (seed={SEED})"
        state = json.loads(line)
        proc.wait(timeout=30)
        return state
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def assert_prefix_consistent(recovered, plan, acked):
    assert recovered["violations"] == [], \
        f"fsck failed after recovery (seed={SEED}): " \
        f"{recovered['violations']}"
    expected = shadow_states(plan, acked)
    got = {"migrations": recovered["migrations"],
           "documents": recovered["documents"]}
    assert got in expected, (
        f"recovered state is not the acked prefix (acked={acked}, "
        f"seed={SEED})\n got      {got}\n expected {expected[0]}\n"
        f" or       {expected[1]}")


class TestSigkillRecovery:
    def test_kill_at_seeded_offsets_recovers_acked_prefix(self, tmp_path):
        plan = make_plan(SEED)
        rng = random.Random(SEED + 1)
        kill_points = sorted(rng.sample(range(2, len(plan) - 1), 3))
        for run, kill_after in enumerate(kill_points):
            workdir = tmp_path / f"run{run}"
            workdir.mkdir()
            root = str(workdir / "docs")
            store = DiskStore(root)
            for name, data in SITE.items():
                store.put(name, data)
            snapshot = str(workdir / "home.snapshot")
            journal = str(workdir / "home.wal")
            plan_file = workdir / "plan.json"
            plan_file.write_text(json.dumps(plan))
            port = free_port()
            proc = spawn(tmp_path, "run", root, snapshot, journal,
                         port, str(plan_file))
            try:
                assert proc.stdout.readline().strip() == "READY"
                for step in range(kill_after):
                    proc.stdin.write("GO\n")
                    proc.stdin.flush()
                    ack = proc.stdout.readline().strip()
                    assert ack == f"ACK {step + 1}", \
                        f"{ack!r} (seed={SEED})"
                # Release one more step and kill mid-flight: it may or
                # may not have reached the journal — both are legal.
                proc.stdin.write("GO\n")
                proc.stdin.flush()
                os.kill(proc.pid, signal.SIGKILL)
                proc.wait(timeout=10)
            finally:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=10)
            recovered = dump_recovered(tmp_path, root, snapshot, journal,
                                       port)
            assert_prefix_consistent(recovered, plan, kill_after)
            assert recovered["recovery"]["records_replayed"] >= 1

    def test_kill_after_checkpoint_replays_only_the_tail(self, tmp_path):
        """A snapshot mid-plan must not change the recovered state —
        recovery = snapshot + tail, not snapshot alone."""
        plan = make_plan(SEED + 7)
        kill_after = len(plan) - 2
        root = str(tmp_path / "docs")
        store = DiskStore(root)
        for name, data in SITE.items():
            store.put(name, data)
        snapshot = str(tmp_path / "home.snapshot")
        journal = str(tmp_path / "home.wal")
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps(plan))
        port = free_port()
        proc = spawn(tmp_path, "run", root, snapshot, journal, port,
                     str(plan_file))
        try:
            assert proc.stdout.readline().strip() == "READY"
            for step in range(kill_after):
                if step == kill_after // 2:
                    # Mid-plan checkpoint: the periodic thread is not
                    # due for one, so force it the way stop() would.
                    proc.stdin.write("CKPT\n")
                    proc.stdin.flush()
                    assert proc.stdout.readline().strip() == "CKPTOK"
                proc.stdin.write("GO\n")
                proc.stdin.flush()
                assert proc.stdout.readline().startswith("ACK")
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        assert os.path.exists(snapshot)
        recovered = dump_recovered(tmp_path, root, snapshot, journal, port)
        assert recovered["recovery"]["snapshot_loaded"], f"seed={SEED}"
        assert_prefix_consistent(recovered, plan, kill_after)


class TestJournalFaultInjection:
    """Torn/short writes and write errors on the journal file itself."""

    def server_with_faults(self, tmp_path, rules):
        root = str(tmp_path / "docs")
        store = DiskStore(root)
        for name, data in SITE.items():
            store.put(name, data)
        journal_path = str(tmp_path / "home.wal")
        plan = FaultPlan(
            [FaultRule(kind=rule_kind, name=os.path.abspath(journal_path),
                       **kwargs) for rule_kind, kwargs in rules],
            seed=SEED)
        config = ServerConfig(stats_interval=60.0, pinger_interval=60.0,
                              validation_interval=60.0, wal_fsync="always")
        engine = DCWSEngine(Location("127.0.0.1", free_port()), config,
                            store, entry_points=["/index.html"],
                            peers=[COOP])
        server = ThreadedDCWSServer(
            engine, tick_period=10.0,
            snapshot_path=str(tmp_path / "home.snapshot"),
            journal_path=journal_path, faults=plan)
        server.start()
        return server, journal_path

    def crash(self, server):
        """Die without the clean-stop checkpoint: threads stop, listener
        closes, but no snapshot is written and the journal file is left
        exactly as the last append (or torn append) left it."""
        server._stop.set()
        if server._listener is not None:
            server._listener.close()
        for thread in server._threads:
            thread.join(timeout=5.0)
        server.pool.close()
        server._listener = None

    def run_until_fault(self, server, plan_steps):
        applied = 0
        for index, step in enumerate(plan_steps):
            try:
                with server._lock:
                    apply_step(server.engine, step, float(index + 1))
                applied += 1
            except InjectedDiskError:
                break
        return applied

    def test_torn_journal_write_recovers_acked_prefix(self, tmp_path):
        plan = make_plan(SEED + 3)
        server, journal_path = self.server_with_faults(
            tmp_path, [("torn_write", {"skip_first": 5,
                                       "max_injections": 1})])
        acked = self.run_until_fault(server, plan)
        assert acked < len(plan), "torn write was never injected"
        self.crash(server)
        fresh = DCWSEngine(server.engine.location, ServerConfig(),
                           DiskStore(str(tmp_path / "docs")),
                           entry_points=["/index.html"], peers=[COOP])
        from repro.server.persistence import recover
        stats = recover(fresh, str(tmp_path / "home.snapshot"),
                        journal_path, now=100.0)
        assert stats.torn_tail_truncated, f"seed={SEED}"
        assert check_engine(fresh) == []
        expected = shadow_states(plan, acked)
        assert durable_state(fresh) in expected

    def test_journal_write_error_aborts_mutation_cleanly(self, tmp_path):
        plan = make_plan(SEED + 4)
        server, journal_path = self.server_with_faults(
            tmp_path, [("disk_write_error", {"skip_first": 4,
                                             "max_injections": 1})])
        failed_at = None
        applied = 0
        for index, step in enumerate(plan):
            try:
                with server._lock:
                    apply_step(server.engine, step, float(index + 1))
                applied += 1
            except InjectedDiskError:
                failed_at = index
                break
        assert failed_at is not None, "write error was never injected"
        # The failed mutation was not acknowledged.  Updates journal
        # before touching state (clean abort); migration decisions apply
        # first and journal after, so the live engine holds either the
        # applied prefix or one extra, half-durable step.
        assert durable_state(server.engine) in shadow_states(plan, applied)
        self.crash(server)
        fresh = DCWSEngine(server.engine.location, ServerConfig(),
                           DiskStore(str(tmp_path / "docs")),
                           entry_points=["/index.html"], peers=[COOP])
        from repro.server.persistence import recover
        stats = recover(fresh, str(tmp_path / "home.snapshot"),
                        journal_path, now=100.0)
        # Recovery replays exactly the acknowledged prefix: the failed
        # record never reached the journal.
        assert stats.records_replayed >= applied
        assert check_engine(fresh) == []
        assert durable_state(fresh) == shadow_states(plan, applied)[0]
