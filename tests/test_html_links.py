"""Unit tests for link extraction."""

from repro.html.links import extract_links, is_followable, link_elements
from repro.html.parser import parse_html


class TestExtraction:
    def test_anchor_and_image(self):
        doc = parse_html('<a href="b.html">b</a><img src="i.gif">')
        links = extract_links(doc)
        assert [(l.tag, l.value, l.embedded) for l in links] == [
            ("a", "b.html", False), ("img", "i.gif", True)]

    def test_frames_extracted(self):
        doc = parse_html('<frameset><frame src="menu.html">'
                         '<frame src="body.html"></frameset>')
        assert [l.value for l in extract_links(doc)] == \
            ["menu.html", "body.html"]

    def test_body_background(self):
        doc = parse_html('<body background="bg.gif">x</body>')
        links = extract_links(doc)
        assert links[0].value == "bg.gif"
        assert links[0].embedded is True

    def test_area_and_link_tags(self):
        doc = parse_html('<area href="map.html"><link href="style.css">')
        assert [l.tag for l in extract_links(doc)] == ["area", "link"]

    def test_duplicate_references_all_reported(self):
        doc = parse_html('<img src="bar.jpg"><img src="bar.jpg">')
        assert len(extract_links(doc)) == 2

    def test_document_order(self):
        doc = parse_html('<a href="1"><img src="2"></a><a href="3">x</a>')
        assert [l.value for l in extract_links(doc)] == ["1", "2", "3"]

    def test_missing_attribute_skipped(self):
        doc = parse_html('<a name="anchor">x</a><img alt="no src">')
        assert extract_links(doc) == []

    def test_value_whitespace_stripped(self):
        doc = parse_html('<a href=" b.html ">x</a>')
        assert extract_links(doc)[0].value == "b.html"


class TestFollowable:
    def test_fragment_only_not_followable(self):
        assert not is_followable("#top")

    def test_empty_not_followable(self):
        assert not is_followable("")
        assert not is_followable("   ")

    def test_mailto_not_followable(self):
        assert not is_followable("mailto:a@b.c")
        assert not is_followable("MAILTO:a@b.c")

    def test_javascript_not_followable(self):
        assert not is_followable("javascript:void(0)")

    def test_https_not_followable(self):
        # The 1998 prototype speaks plain http only.
        assert not is_followable("https://secure/x")

    def test_relative_and_absolute_followable(self):
        assert is_followable("x.html")
        assert is_followable("/x.html")
        assert is_followable("http://h/x.html")

    def test_link_elements_matches_extract(self):
        doc = parse_html('<a href="a.html">1</a><a href="#f">2</a>'
                         '<img src="i.gif">')
        elements = link_elements(doc)
        assert len(elements) == len(extract_links(doc)) == 2
