"""Unit tests for Algorithm 1 (document selection for migration)."""

from repro.core.document import Location
from repro.core.ldg import LocalDocumentGraph
from repro.core.selection import (
    eligible_candidates,
    select_documents_for_migration,
)

HOME = Location("home", 80)
COOP = Location("coop", 80)


def graph_with_hits(hits: dict, entry="/index.html") -> LocalDocumentGraph:
    graph = LocalDocumentGraph(HOME)
    graph.add_document(entry, 100, entry_point=True,
                       link_to=list(hits))
    for name in hits:
        graph.add_document(name, 100)
    for name, count in hits.items():
        graph.record_hit(name, count)
    graph.record_hit(entry, 1000)  # entry is hottest but must never migrate
    return graph


class TestStep2EntryPoints:
    def test_entry_point_never_selected(self):
        graph = graph_with_hits({"/a": 50})
        chosen = select_documents_for_migration(graph, threshold=10)
        assert [r.name for r in chosen] == ["/a"]

    def test_only_entry_points_yields_nothing(self):
        graph = LocalDocumentGraph(HOME)
        graph.add_document("/index.html", 10, entry_point=True)
        graph.record_hit("/index.html", 100)
        assert select_documents_for_migration(graph, threshold=10) == []

    def test_ablation_allows_entry_selection(self):
        graph = LocalDocumentGraph(HOME)
        graph.add_document("/index.html", 10, entry_point=True)
        graph.record_hit("/index.html", 100)
        chosen = select_documents_for_migration(
            graph, threshold=10, protect_entry_points=False)
        assert [r.name for r in chosen] == ["/index.html"]


class TestStep3Threshold:
    def test_cold_documents_filtered(self):
        graph = graph_with_hits({"/hot": 50, "/cold": 2})
        chosen = select_documents_for_migration(graph, threshold=10)
        assert chosen[0].name == "/hot"

    def test_threshold_reduction_when_all_below(self):
        graph = graph_with_hits({"/warm": 4})
        chosen = select_documents_for_migration(graph, threshold=100)
        assert [r.name for r in chosen] == ["/warm"]

    def test_zero_hit_documents_never_selected(self):
        graph = graph_with_hits({"/never": 0})
        assert select_documents_for_migration(graph, threshold=10) == []

    def test_already_migrated_not_candidates(self):
        graph = graph_with_hits({"/a": 50, "/b": 40})
        graph.mark_migrated("/a", COOP)
        chosen = select_documents_for_migration(graph, threshold=10)
        assert [r.name for r in chosen] == ["/b"]


class TestSteps4And5:
    def test_minimal_remote_linkfrom_preferred(self):
        graph = LocalDocumentGraph(HOME)
        graph.add_document("/entry", 10, entry_point=True)
        graph.add_document("/remote_ref", 10, link_to=["/x"])
        graph.add_document("/local_ref", 10, link_to=["/y"])
        graph.add_document("/x", 10)
        graph.add_document("/y", 10)
        graph.record_hit("/x", 50)
        graph.record_hit("/y", 50)
        graph.mark_migrated("/remote_ref", COOP)  # /x now has a remote referrer
        chosen = select_documents_for_migration(graph, threshold=10)
        assert chosen[0].name == "/y"

    def test_minimal_linkto_breaks_ties(self):
        graph = LocalDocumentGraph(HOME)
        graph.add_document("/entry", 10, entry_point=True)
        graph.add_document("/fanout", 10, link_to=["/t1", "/t2", "/t3"])
        graph.add_document("/leaf", 10)
        for name in ("/t1", "/t2", "/t3"):
            graph.add_document(name, 10)
        graph.record_hit("/fanout", 50)
        graph.record_hit("/leaf", 50)
        chosen = select_documents_for_migration(graph, threshold=10)
        assert chosen[0].name == "/leaf"

    def test_final_tie_prefers_hottest(self):
        graph = graph_with_hits({"/a": 20, "/b": 30})
        chosen = select_documents_for_migration(graph, threshold=10)
        assert chosen[0].name == "/b"

    def test_multiple_selection(self):
        graph = graph_with_hits({"/a": 20, "/b": 30, "/c": 25})
        chosen = select_documents_for_migration(graph, threshold=10, count=2)
        assert len(chosen) == 2
        assert len({r.name for r in chosen}) == 2


class TestEligibleCandidates:
    def test_returns_threshold_survivors(self):
        graph = graph_with_hits({"/a": 50, "/b": 5})
        names = {r.name for r in eligible_candidates(graph, 10)}
        assert names == {"/a"}

    def test_empty_graph(self):
        graph = LocalDocumentGraph(HOME)
        assert eligible_candidates(graph, 10) == []

    def test_deterministic_given_same_graph(self):
        graph = graph_with_hits({"/a": 20, "/b": 20})
        first = select_documents_for_migration(graph, threshold=10)
        second = select_documents_for_migration(graph, threshold=10)
        assert [r.name for r in first] == [r.name for r in second]
