"""Unit tests for the HTML parse tree."""

from repro.html.parser import Document, Element, Text, parse_html
from repro.html.serializer import serialize_html


class TestTreeShape:
    def test_nesting(self):
        doc = parse_html("<div><p>one</p></div>")
        div = doc.children[0]
        assert isinstance(div, Element) and div.name == "div"
        paragraph = div.children[0]
        assert isinstance(paragraph, Element) and paragraph.name == "p"
        assert isinstance(paragraph.children[0], Text)

    def test_void_elements_have_no_children(self):
        doc = parse_html("<img src='x.gif'>text after")
        img = doc.children[0]
        assert img.name == "img"
        assert img.children == []
        assert isinstance(doc.children[1], Text)

    def test_unclosed_tags_closed_at_eof(self):
        doc = parse_html("<ul><li>a<li>b")
        ul = doc.children[0]
        assert [c.name for c in ul.children if isinstance(c, Element)] \
            == ["li", "li"]

    def test_repeated_li_closes_previous(self):
        doc = parse_html("<ul><li>a<li>b</ul>")
        ul = doc.children[0]
        items = [c for c in ul.children if isinstance(c, Element)]
        assert len(items) == 2
        assert items[0].children[0].data == "a"

    def test_stray_end_tag_dropped(self):
        doc = parse_html("a</b>c")
        text = doc.text_content()
        assert text == "ac"

    def test_outer_end_tag_closes_inner(self):
        doc = parse_html("<div><b>x</div>after")
        div = doc.children[0]
        assert div.name == "div"
        # 'after' must be at top level, not inside <b>.
        assert isinstance(doc.children[1], Text)
        assert doc.children[1].data == "after"


class TestQueries:
    DOC = parse_html(
        '<html><body><a href="1.html">a</a><div><a href="2.html">b</a>'
        '</div><img src="i.gif"></body></html>')

    def test_find_all_document_order(self):
        anchors = self.DOC.find_all("a")
        assert [a.get_attr("href") for a in anchors] == ["1.html", "2.html"]

    def test_find_first(self):
        assert self.DOC.find_first("img").get_attr("src") == "i.gif"
        assert self.DOC.find_first("table") is None

    def test_iter_elements_depth_first(self):
        names = [e.name for e in self.DOC.iter_elements()]
        assert names == ["html", "body", "a", "div", "a", "img"]

    def test_text_content(self):
        assert self.DOC.text_content() == "ab"

    def test_empty_document(self):
        doc = parse_html("")
        assert doc.children == []
        assert doc.find_all("a") == []


class TestMutation:
    def test_set_attr_then_serialize(self):
        doc = parse_html('<a href="old.html">x</a>')
        doc.find_first("a").set_attr("href", "new.html")
        assert serialize_html(doc) == '<a href="new.html">x</a>'

    def test_frameset_frames(self):
        doc = parse_html('<frameset rows="*,*"><frame src="a.html">'
                         '<frame src="b.html"></frameset>')
        frames = doc.find_all("frame")
        assert [f.get_attr("src") for f in frames] == ["a.html", "b.html"]
