"""The event-loop front end over real sockets.

Exercises the nonblocking paths the thread-per-connection server never
hits: dribbled request bytes interleaved with other connections, idle
and slowloris read-deadline reaping, pipelining through the loop,
mid-response client disconnect, and admission control (connection cap
shed with 503 + Retry-After).
"""

import re
import socket
import time

import pytest

from repro.client.realclient import fetch_url
from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.server.aio import AsyncDCWSServer
from repro.server.engine import DCWSEngine
from repro.server.filestore import MemoryStore
from repro.http.urls import URL

SITE = {
    "/index.html": b'<html><a href="d.html">D</a></html>',
    "/d.html": b"<html>doc</html>",
    "/big.html": b"<html>" + b"x" * 200_000 + b"</html>",
}


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def make_server(config: ServerConfig, **kwargs) -> AsyncDCWSServer:
    loc = Location("127.0.0.1", free_port())
    engine = DCWSEngine(loc, config, MemoryStore(SITE))
    return AsyncDCWSServer(engine, tick_period=0.05, **kwargs)


@pytest.fixture()
def server():
    config = ServerConfig(stats_interval=60.0, pinger_interval=60.0,
                          keep_alive_timeout=0.4)
    with make_server(config, request_timeout=0.8) as server:
        assert server.wait_ready()
        yield server


def connect(server: AsyncDCWSServer) -> socket.socket:
    return socket.create_connection(("127.0.0.1", server.port), timeout=5.0)


def recv_until_close(sock: socket.socket) -> bytes:
    data = bytearray()
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            return bytes(data)
        data.extend(chunk)


class TestServing:
    def test_serves_document(self, server):
        outcome = fetch_url(URL("127.0.0.1", server.port, "/d.html"))
        assert outcome.status == 200
        assert outcome.size == len(SITE["/d.html"])

    def test_keep_alive_many_requests_one_connection(self, server):
        with connect(server) as sock:
            for __ in range(5):
                sock.sendall(b"GET /d.html HTTP/1.1\r\nHost: h\r\n\r\n")
                head = sock.recv(65536)
                assert head.split(b"\r\n")[0].endswith(b"200 OK")
        assert server.connections_accepted == 1

    def test_pipelined_requests_answered_in_order(self, server):
        with connect(server) as sock:
            sock.sendall(b"GET /d.html HTTP/1.1\r\nHost: h\r\n\r\n"
                         b"GET /ghost.html HTTP/1.1\r\nHost: h\r\n\r\n"
                         b"GET /index.html HTTP/1.1\r\nHost: h\r\n"
                         b"Connection: close\r\n\r\n")
            data = recv_until_close(sock)
        # Responses are back-to-back (no separator after a body), so pull
        # status lines by pattern rather than splitting on CRLF.
        statuses = re.findall(rb"HTTP/1\.0 (\d+) ", data)
        assert statuses == [b"200", b"404", b"200"]

    def test_dribbled_request_bytes(self, server):
        with connect(server) as sock:
            wire = b"GET /d.html HTTP/1.0\r\nHost: h\r\n\r\n"
            for index in range(len(wire)):
                sock.sendall(wire[index:index + 1])
            data = recv_until_close(sock)
        assert data.split(b"\r\n")[0].endswith(b"200 OK")

    def test_bad_request_answered_400(self, server):
        with connect(server) as sock:
            sock.sendall(b"NOT-HTTP\r\n\r\n")
            data = recv_until_close(sock)
        assert b"400" in data.split(b"\r\n")[0]

    def test_post_body_roundtrip(self, server):
        with connect(server) as sock:
            sock.sendall(b"POST /d.html HTTP/1.0\r\nContent-Length: 5\r\n"
                         b"\r\nhello")
            data = recv_until_close(sock)
        assert data.split(b"\r\n")[0].endswith(b"200 OK")

    def test_concurrent_connections_interleave(self, server):
        """Dribbling one connection never stalls another (no worker to pin)."""
        with connect(server) as slow, connect(server) as fast:
            slow.sendall(b"GET /d.h")  # parked mid-head
            start = time.monotonic()
            fast.sendall(b"GET /d.html HTTP/1.0\r\n\r\n")
            data = recv_until_close(fast)
            elapsed = time.monotonic() - start
        assert data.split(b"\r\n")[0].endswith(b"200 OK")
        assert elapsed < 0.5


class TestDeadlines:
    def test_idle_keep_alive_connection_reaped(self, server):
        with connect(server) as sock:
            sock.sendall(b"GET /d.html HTTP/1.1\r\nHost: h\r\n\r\n")
            assert sock.recv(65536)
            # Past keep_alive_timeout (0.4 s) the loop closes the socket.
            sock.settimeout(3.0)
            assert recv_until_close(sock) == b""

    def test_slowloris_dribble_is_killed(self, server):
        """Bytes trickling in must NOT extend the read deadline."""
        with connect(server) as sock:
            sock.settimeout(5.0)
            start = time.monotonic()
            # One byte every 0.2 s would keep a per-byte timer alive
            # forever; the per-request deadline (0.8 s) must still fire.
            for byte in b"GET /never-finishes.html HTTP/1.0":
                try:
                    sock.sendall(bytes([byte]))
                    if _readable(sock) and sock.recv(65536) == b"":
                        break  # FIN from the reaper
                except OSError:
                    break  # RST from the reaper
                time.sleep(0.2)
            else:
                pytest.fail("server kept reading the dribble")
            assert time.monotonic() - start < 4.0

    def test_mid_response_disconnect_survived(self, server):
        with connect(server) as sock:
            sock.sendall(b"GET /big.html HTTP/1.1\r\nHost: h\r\n\r\n")
            sock.recv(256)  # take a slice of the response, then vanish
        # The loop must shrug it off and keep serving others.
        outcome = fetch_url(URL("127.0.0.1", server.port, "/d.html"))
        assert outcome.status == 200


class TestServePathRealism:
    def test_conditional_304_through_loop(self, server):
        with connect(server) as sock:
            sock.sendall(b"GET /d.html HTTP/1.1\r\nHost: h\r\n\r\n")
            head = sock.recv(65536)
            etag = re.search(rb'ETag: ("[^"]+")', head).group(1)
            sock.sendall(b"GET /d.html HTTP/1.1\r\nHost: h\r\n"
                         b"If-None-Match: " + etag + b"\r\n\r\n")
            data = sock.recv(65536)
        assert re.match(rb"HTTP/1\.\d 304 ", data)
        # A 304 ends at its blank line — no body follows.
        assert data.endswith(b"\r\n\r\n")

    def test_gzip_negotiated_through_loop(self, server):
        import gzip

        with connect(server) as sock:
            sock.sendall(b"GET /big.html HTTP/1.1\r\nHost: h\r\n"
                         b"Accept-Encoding: gzip\r\n"
                         b"Connection: close\r\n\r\n")
            data = recv_until_close(sock)
        head, __, body = data.partition(b"\r\n\r\n")
        assert b"Content-Encoding: gzip" in head
        assert b"Vary: Accept-Encoding" in head
        assert gzip.decompress(body) == SITE["/big.html"]

    def test_range_206_through_loop(self, server):
        with connect(server) as sock:
            sock.sendall(b"GET /big.html HTTP/1.1\r\nHost: h\r\n"
                         b"Range: bytes=0-5\r\nConnection: close\r\n\r\n")
            data = recv_until_close(sock)
        head, __, body = data.partition(b"\r\n\r\n")
        assert re.match(rb"HTTP/1\.\d 206 ", head)
        assert body == SITE["/big.html"][:6]

    def test_recoverable_400_keeps_pipeline_framed(self, server):
        with connect(server) as sock:
            sock.sendall(b"POST /x HTTP/1.1\r\nHost: h\r\n"
                         b"Content-Length: -20\r\n\r\n"
                         b"GET /d.html HTTP/1.1\r\nHost: h\r\n"
                         b"Connection: close\r\n\r\n")
            data = recv_until_close(sock)
        statuses = re.findall(rb"HTTP/1\.\d (\d+) ", data)
        assert statuses == [b"400", b"200"]

    def test_conflicting_content_length_closes(self, server):
        with connect(server) as sock:
            sock.sendall(b"POST /x HTTP/1.1\r\nHost: h\r\n"
                         b"Content-Length: 5\r\nContent-Length: 30\r\n\r\n"
                         b"hello"
                         b"GET /d.html HTTP/1.1\r\nHost: h\r\n\r\n")
            data = recv_until_close(sock)  # server closes: fatal framing
        statuses = re.findall(rb"HTTP/1\.\d (\d+) ", data)
        assert statuses == [b"400"]

    def test_connection_pressure_sheds_regeneration_only(self):
        # One live connection out of max_connections=2 crosses the 0.5
        # pressure threshold: dirty documents 503, clean ones still serve.
        config = ServerConfig(stats_interval=60.0, pinger_interval=60.0,
                              max_connections=2, shed_pressure=0.5)
        with make_server(config) as server:
            assert server.wait_ready()
            with server._lock:
                server.engine.update_document("/index.html",
                                              SITE["/index.html"])
            with connect(server) as sock:
                sock.sendall(b"GET /index.html HTTP/1.1\r\nHost: h\r\n\r\n")
                dirty = sock.recv(65536)
                sock.sendall(b"GET /d.html HTTP/1.1\r\nHost: h\r\n\r\n")
                clean = sock.recv(65536)
            assert re.match(rb"HTTP/1\.\d 503 ", dirty)
            assert b"Retry-After: 1" in dirty
            assert re.match(rb"HTTP/1\.\d 200 ", clean)
            with server._lock:
                assert server.engine.stats.regenerations_shed == 1


def _readable(sock: socket.socket) -> bool:
    import select

    ready, __, __ = select.select([sock], [], [], 0)
    return bool(ready)


class TestAdmissionControl:
    def test_over_cap_connection_shed_with_503(self):
        config = ServerConfig(stats_interval=60.0, pinger_interval=60.0,
                              max_connections=2)
        with make_server(config) as server:
            assert server.wait_ready()
            held = [connect(server), connect(server)]
            try:
                # Make sure both are registered in the loop first.
                for sock in held:
                    sock.sendall(b"GET /d.html HTTP/1.1\r\nHost: h\r\n\r\n")
                    assert sock.recv(65536)
                extra = connect(server)
                data = recv_until_close(extra)
                extra.close()
            finally:
                for sock in held:
                    sock.close()
            head = data.split(b"\r\n")[0]
            assert b"503" in head
            assert b"Retry-After: 1" in data
            assert server.connections_shed == 1

    def test_shed_recorded_as_drop_metric(self):
        config = ServerConfig(stats_interval=60.0, pinger_interval=60.0,
                              max_connections=1)
        with make_server(config) as server:
            assert server.wait_ready()
            with connect(server) as held:
                held.sendall(b"GET /d.html HTTP/1.1\r\nHost: h\r\n\r\n")
                assert held.recv(65536)
                extra = connect(server)
                recv_until_close(extra)
                extra.close()
                deadline = time.time() + 5.0
                while time.time() < deadline:
                    with server._lock:
                        if server.engine.metrics.drops.lifetime_count >= 1:
                            return
                    time.sleep(0.05)
            pytest.fail("shed connection never reached the drop metric")


class TestBackpressure:
    def test_large_response_to_slow_reader_completes(self):
        """A response bigger than the write buffer limit drains through
        EVENT_WRITE as the client reads, with reads paused meanwhile."""
        config = ServerConfig(stats_interval=60.0, pinger_interval=60.0,
                              write_buffer_limit=16 * 1024)
        with make_server(config) as server:
            assert server.wait_ready()
            with connect(server) as sock:
                sock.sendall(b"GET /big.html HTTP/1.0\r\n\r\n")
                time.sleep(0.3)  # let the server hit the high-water mark
                data = recv_until_close(sock)
        head, __, body = data.partition(b"\r\n\r\n")
        assert head.split(b"\r\n")[0].endswith(b"200 OK")
        assert body == SITE["/big.html"]


class TestHealthAndLifecycle:
    def test_health_endpoint_bypasses_accounting(self, server):
        engine = server.engine
        before = (engine.stats.requests,
                  engine.metrics.connections.lifetime_count)
        outcome = fetch_url(URL("127.0.0.1", server.port, "/~dcws/health"))
        assert outcome.status == 200
        with server._lock:
            after = (engine.stats.requests,
                     engine.metrics.connections.lifetime_count)
        assert before == after

    def test_double_start_rejected(self, server):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            server.start()

    def test_stop_is_idempotent(self):
        config = ServerConfig(stats_interval=60.0, pinger_interval=60.0)
        server = make_server(config)
        server.start()
        assert server.wait_ready()
        server.stop()
        server.stop()  # second stop is a no-op
