"""Striped locks and seqlock shard versions (repro.server.striping)."""

import threading

from repro.server.striping import (
    DEFAULT_STRIPES,
    ShardVersions,
    StripedLock,
    shard_of,
)


class TestShardOf:
    def test_stable_across_calls(self):
        # CRC-32, not the per-process salted hash(): every worker
        # process must map the same name to the same shard.
        assert shard_of("/a.html", 16) == shard_of("/a.html", 16)

    def test_known_value_is_crc32(self):
        import zlib
        assert shard_of("/a.html", 16) == zlib.crc32(b"/a.html") % 16

    def test_range(self):
        for i in range(200):
            assert 0 <= shard_of(f"/doc{i}.html", 7) < 7

    def test_single_stripe_collapses_to_zero(self):
        assert shard_of("/anything", 1) == 0
        assert shard_of("/anything", 0) == 0

    def test_distribution_not_degenerate(self):
        shards = {shard_of(f"/doc{i}.html", DEFAULT_STRIPES)
                  for i in range(256)}
        assert len(shards) > DEFAULT_STRIPES // 2


class TestStripedLock:
    def test_same_name_same_lock(self):
        locks = StripedLock(8)
        assert locks.lock_for("/x.html") is locks.lock_for("/x.html")

    def test_holding_is_exclusive_per_stripe(self):
        locks = StripedLock(4)
        with locks.holding("/x.html"):
            lock = locks.lock_for("/x.html")
            assert not lock.acquire(blocking=False)
        lock = locks.lock_for("/x.html")
        assert lock.acquire(blocking=False)
        lock.release()

    def test_holding_all_takes_every_stripe(self):
        locks = StripedLock(4)
        with locks.holding_all():
            for name in ("/a", "/b", "/c", "/d", "/e", "/f"):
                assert not locks.lock_for(name).acquire(blocking=False)

    def test_concurrent_different_stripes_do_not_block(self):
        locks = StripedLock(64)
        entered = threading.Event()
        name_a, name_b = "/a.html", "/b.html"
        assert shard_of(name_a, 64) != shard_of(name_b, 64)

        def hold_b():
            with locks.holding(name_b):
                entered.set()

        with locks.holding(name_a):
            worker = threading.Thread(target=hold_b)
            worker.start()
            assert entered.wait(2.0)
            worker.join(2.0)


class TestShardVersions:
    def test_read_even_and_stable_when_idle(self):
        shards = ShardVersions(4)
        stamp = shards.read(shard_of("/x", 4))
        assert stamp is not None and stamp % 2 == 0
        assert shards.read(shard_of("/x", 4)) == stamp

    def test_write_bumps_by_two(self):
        shards = ShardVersions(4)
        shard = shard_of("/x", 4)
        before = shards.read(shard)
        with shards.write("/x"):
            pass
        after = shards.read(shard)
        assert after == before + 2

    def test_read_during_write_returns_none(self):
        shards = ShardVersions(4)
        with shards.write("/x"):
            assert shards.read(shard_of("/x", 4)) is None

    def test_other_shards_untouched(self):
        shards = ShardVersions(64)
        other = shard_of("/other", 64)
        assert other != shard_of("/x", 64)
        before = shards.read(other)
        with shards.write("/x"):
            assert shards.read(other) == before

    def test_nested_write_keeps_odd_until_outermost_exit(self):
        # A policy decision callback fires shards.write(name) inside a
        # write_all() bracket; naive counting would flip the stamp even
        # mid-mutation and let a lock-free reader validate a torn read.
        shards = ShardVersions(4)
        shard = shard_of("/x", 4)
        before = shards.read(shard)
        with shards.write_all():
            assert shards.read(shard) is None
            with shards.write("/x"):
                assert shards.read(shard) is None
            # still inside the outer bracket: must stay odd
            assert shards.read(shard) is None
        after = shards.read(shard)
        assert after is not None and after % 2 == 0
        assert after > before

    def test_stamp_matches_read(self):
        shards = ShardVersions(8)
        assert shards.stamp("/x") == shards.read(shard_of("/x", 8))

    def test_write_multiple_names_dedupes_shards(self):
        shards = ShardVersions(1)  # every name collides on shard 0
        before = shards.read(0)
        with shards.write("/a", "/b", "/c"):
            assert shards.read(0) is None
        assert shards.read(0) == before + 2
