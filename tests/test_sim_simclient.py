"""Unit tests for the event-driven Algorithm 2 client."""

import pytest

from repro.http.headers import Headers
from repro.http.messages import Response
from repro.http.urls import URL, parse_url
from repro.sim.events import EventLoop
from repro.sim.network import CostModel
from repro.sim.simclient import SimClient


class ScriptedServer:
    """Answers client sends from a URL->response script, after a delay."""

    def __init__(self, loop, pages, delay=0.001):
        self.loop = loop
        self.pages = pages
        self.delay = delay
        self.requests = []
        self.drop_next = 0

    def send(self, url, request, on_response):
        self.requests.append(str(url))
        if self.drop_next > 0:
            self.drop_next -= 1
            response = Response(status=503)
        else:
            response = self.pages.get(str(url), Response(status=404))
        self.loop.schedule_after(self.delay, lambda: on_response(response))


def html_response(body=b"<html>x</html>"):
    response = Response(status=200, body=body)
    response.headers.set("Content-Type", "text/html")
    return response


def parse_stub(mapping):
    def parse(content_type, body):
        return mapping.get(body, ([], []))
    return parse


def make_client(loop, server, parse, entries=("http://h/index.html",),
                costs=None, **kwargs):
    kwargs.setdefault("seed", 7)
    return SimClient(0, loop, costs or CostModel(client_overhead=0.001),
                     send=server.send, parse=parse,
                     entry_points=[parse_url(e) for e in entries], **kwargs)


class TestNavigation:
    def test_walks_links(self):
        loop = EventLoop()
        index_body = b"<html>index</html>"
        leaf_body = b"<html>leaf</html>"
        server = ScriptedServer(loop, {
            "http://h/index.html": html_response(index_body),
            "http://h/a.html": html_response(leaf_body),
        })
        parse = parse_stub({index_body: (["a.html"], []),
                            leaf_body: ([], [])})
        client = make_client(loop, server, parse)
        client.start()
        loop.run_until(2.0)
        client.stop()
        assert "http://h/index.html" in server.requests
        assert "http://h/a.html" in server.requests
        assert client.stats.sequences >= 2  # leaf ends sequences early

    def test_images_fetched_in_parallel(self):
        loop = EventLoop()
        index_body = b"<html>imgs</html>"
        image = Response(status=200, body=b"GIF")
        server = ScriptedServer(loop, {
            "http://h/index.html": html_response(index_body),
            **{f"http://h/i{k}.gif": image for k in range(8)},
        }, delay=0.1)
        parse = parse_stub({
            index_body: ([], [f"i{k}.gif" for k in range(8)])})
        client = make_client(loop, server, parse, max_steps=1, min_steps=1)
        client.start()
        # After the page + first image wave: at most 4 images in flight.
        loop.run_until(0.15)
        image_requests = [r for r in server.requests if "i" in r and ".gif" in r]
        assert 1 <= len(image_requests) <= 4
        loop.run_until(5.0)
        client.stop()
        image_requests = {r for r in server.requests if ".gif" in r}
        assert len(image_requests) == 8

    def test_entry_point_required(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            SimClient(0, loop, CostModel(), send=lambda *a: None,
                      parse=lambda *a: ([], []), entry_points=[], seed=1)


class TestRedirects:
    def test_follows_301(self):
        loop = EventLoop()
        target_body = b"<html>moved target</html>"
        redirect = Response(status=301)
        redirect.headers.set("Location", "http://coop/~migrate/h/80/index.html")
        server = ScriptedServer(loop, {
            "http://h/index.html": redirect,
            "http://coop/~migrate/h/80/index.html": html_response(target_body),
        })
        client = make_client(loop, server, parse_stub({target_body: ([], [])}))
        client.start()
        loop.run_until(1.0)
        client.stop()
        assert client.stats.redirects >= 1
        assert "http://coop/~migrate/h/80/index.html" in server.requests

    def test_redirect_loop_bounded(self):
        loop = EventLoop()
        redirect = Response(status=301)
        redirect.headers.set("Location", "http://h/index.html")
        server = ScriptedServer(loop, {"http://h/index.html": redirect})
        client = make_client(loop, server, parse_stub({}))
        client.start()
        loop.run_until(0.5)
        client.stop()
        # Bounded redirects per request attempt, not infinite.
        assert client.stats.redirects < len(server.requests) + 10


class TestBackoff:
    def test_503_backoff_then_retry(self):
        loop = EventLoop()
        body = b"<html>ok</html>"
        server = ScriptedServer(loop, {"http://h/index.html":
                                       html_response(body)})
        server.drop_next = 2
        costs = CostModel(client_overhead=0.001, backoff_base=0.5)
        client = make_client(loop, server, parse_stub({body: ([], [])}),
                             costs=costs, max_steps=1, min_steps=1)
        client.start()
        loop.run_until(0.4)
        assert client.stats.drops == 1
        loop.run_until(10.0)
        client.stop()
        assert client.stats.drops == 2
        assert client.stats.backoff_time == pytest.approx(1.5)  # 0.5 + 1.0
        assert any(r.endswith("index.html") for r in server.requests)

    def test_stop_halts_activity(self):
        loop = EventLoop()
        body = b"<html>ok</html>"
        server = ScriptedServer(loop,
                                {"http://h/index.html": html_response(body)})
        client = make_client(loop, server, parse_stub({body: ([], [])}))
        client.start()
        loop.run_until(0.5)
        client.stop()
        count = len(server.requests)
        loop.run_until(5.0)
        assert len(server.requests) == count


class TestCaching:
    def test_cached_page_not_refetched_within_sequence(self):
        loop = EventLoop()
        a_body = b"<html>a</html>"
        b_body = b"<html>b</html>"
        server = ScriptedServer(loop, {
            "http://h/index.html": html_response(a_body),
            "http://h/b.html": html_response(b_body),
        })
        # a <-> b cycle: revisits must come from cache.
        parse = parse_stub({a_body: (["b.html"], []),
                            b_body: (["/index.html"], [])})
        client = make_client(loop, server, parse, min_steps=10, max_steps=10)
        client.start()
        loop.run_until(0.2)
        client.stop()
        assert server.requests.count("http://h/index.html") <= \
            client.stats.sequences + 1
        assert client.stats.cache_hits > 0
