"""End-to-end content integrity: digests, scrub daemon, quarantine.

Covers the digest lifecycle (authored -> recorded -> stamped -> verified),
the budgeted background scrubber, quarantine semantics on both the home
and the hosted side (including the home notification that triggers
drop-and-repair), transport-level rejection of corrupted pulls, WAL
replay and snapshot round-trips of digest + quarantine state, and the
fault plan's seeded ``corrupt`` kind (same seed, same flip, whichever
transport the payload crosses).
"""

import socket

import pytest

from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.errors import ConfigError
from repro.faults import FaultPlan, FaultRule, apply_corruption
from repro.http.content import (
    DIGEST_HEADER,
    QUARANTINE_HEADER,
    body_digest,
    digest_matches,
    gunzip_bytes,
)
from repro.http.messages import Request
from repro.server.engine import (
    DCWSEngine,
    EngineReply,
    PullFromHome,
    PURPOSE_HEADER,
)
from repro.server.filestore import DiskStore, MemoryStore
from repro.server.fsck import check_engine
from repro.server.persistence import (
    apply_record,
    restore_engine,
    snapshot_engine,
)
from repro.server.wal import WriteAheadJournal, scan_journal

HOME = Location("home", 8001)
COOP = Location("coop", 8002)
COOP2 = Location("coop2", 8003)

SITE = {
    "/index.html": b'<html><a href="d.html">D</a><a href="e.html">E</a>'
                   b'</html>',
    "/d.html": b'<html><a href="e.html">E</a></html>',
    "/e.html": b"<html>leaf</html>",
    "/i.gif": b"GIF89a" + b"x" * 300,
}


def make_engine(location=HOME, site=None, peers=(COOP, COOP2),
                **config_kwargs):
    config_kwargs.setdefault("stats_interval", 60.0)
    config_kwargs.setdefault("pinger_interval", 60.0)
    config_kwargs.setdefault("validation_interval", 60.0)
    config = ServerConfig(**config_kwargs)
    store = MemoryStore(site if site is not None else dict(SITE))
    engine = DCWSEngine(location, config, store,
                        entry_points=["/index.html"]
                        if site is None else [],
                        peers=list(peers))
    engine.initialize(0.0)
    return engine


def make_coop(**config_kwargs):
    return make_engine(location=COOP, site={}, peers=(HOME,),
                       **config_kwargs)


def get(engine, path, now=1.0, headers=None):
    request = Request(method="GET", target=path)
    if headers:
        for name, value in headers.items():
            request.headers.set(name, value)
    return engine.handle_request(request, now)


def corrupt_store(engine, name):
    """Flip one byte of *name*'s stored bytes (simulated disk rot)."""
    good = engine.store.get(name)
    bad = bytearray(good)
    bad[len(bad) // 2] ^= 0xFF
    engine.store.put(name, bytes(bad))
    return bytes(bad)


MIGRATED_D = "/~migrate/home/8001/d.html"


def pulled_coop(**config_kwargs):
    """A co-op hosting a fetched copy of /d.html, plus its home digest."""
    coop = make_coop(**config_kwargs)
    coop.seed_hosted(HOME, "/d.html", SITE["/d.html"], version=0, now=0.5)
    return coop


class TestDigestLifecycle:
    def test_initialize_records_digest_of_stored_bytes(self):
        engine = make_engine()
        for name, data in SITE.items():
            record = engine.graph.get(name)
            assert record.digest == body_digest(data)
            assert record.digest.startswith("sha256:")

    def test_update_document_refreshes_digest(self):
        engine = make_engine()
        engine.update_document("/e.html", b"<html>rewritten</html>")
        assert engine.graph.get("/e.html").digest == \
            body_digest(b"<html>rewritten</html>")

    def test_served_responses_stamp_digest_header(self):
        engine = make_engine()
        reply = get(engine, "/e.html")
        assert reply.response.headers.get(DIGEST_HEADER) == \
            engine.graph.get("/e.html").digest
        assert digest_matches(reply.response.body,
                              reply.response.headers.get(DIGEST_HEADER))

    def test_gzip_variant_carries_identity_digest(self):
        engine = make_engine(site={
            "/big.html": b"<html>" + b"wellcompressible " * 64 + b"</html>"})
        get(engine, "/big.html")  # fill the response cache
        reply = get(engine, "/big.html", now=1.1,
                    headers={"Accept-Encoding": "gzip"})
        assert reply.response.headers.get("Content-Encoding") == "gzip"
        claimed = reply.response.headers.get(DIGEST_HEADER)
        assert claimed == engine.graph.get("/big.html").digest
        # The digest covers the identity entity, not the gzip transfer.
        assert not digest_matches(reply.response.body, claimed)
        assert digest_matches(gunzip_bytes(reply.response.body), claimed)

    def test_range_responses_carry_no_digest(self):
        engine = make_engine()
        reply = get(engine, "/i.gif", headers={"Range": "bytes=0-5"})
        assert reply.response.status == 206
        assert reply.response.headers.get(DIGEST_HEADER) is None

    def test_pull_installs_home_digest_on_hosted_copy(self):
        coop = make_coop()
        home = make_engine()
        pull = get(coop, MIGRATED_D)
        upstream = get(home, pull.request.target, now=1.1,
                       headers={PURPOSE_HEADER: "migration-pull"})
        assert upstream.response.headers.get(DIGEST_HEADER) == \
            body_digest(SITE["/d.html"])
        coop.complete_pull(pull, upstream.response, now=1.2)
        assert coop.hosted[MIGRATED_D].digest == body_digest(SITE["/d.html"])
        served = get(coop, MIGRATED_D, now=1.3)
        assert served.response.headers.get(DIGEST_HEADER) == \
            body_digest(SITE["/d.html"])


class TestPullVerification:
    def test_corrupted_pull_body_rejected_and_degraded_home(self):
        coop = make_coop()
        home = make_engine()
        pull = get(coop, MIGRATED_D)
        upstream = get(home, pull.request.target, now=1.1,
                       headers={PURPOSE_HEADER: "migration-pull"})
        upstream.response.body = apply_corruption(
            _corrupt_event(), upstream.response.body)
        reply = coop.complete_pull(pull, upstream.response, now=1.2)
        # Never installed, never served: the client is bounced to the
        # home, which holds the verified permanent copy.
        assert reply.response.status == 302
        assert reply.response.headers.get("Location") == \
            "http://home:8001/d.html"
        assert coop.integrity.counters.pulls_rejected == 1
        assert not coop.hosted[MIGRATED_D].fetched

    def test_transport_flagged_corruption_rejected(self):
        # The dispatch layer translates the pool's DigestMismatch into
        # complete_pull(corrupt=True): same rejection, no install.
        coop = make_coop()
        home = make_engine()
        pull = get(coop, MIGRATED_D)
        upstream = get(home, pull.request.target, now=1.1,
                       headers={PURPOSE_HEADER: "migration-pull"})
        reply = coop.complete_pull(pull, upstream.response, now=1.2,
                                   corrupt=True)
        assert reply.response.status == 302
        assert coop.integrity.counters.pulls_rejected == 1
        assert not coop.hosted[MIGRATED_D].fetched
        # A corruption is not a peer failure: the home answered, so the
        # breaker/pinger must not count it toward declaring it dead.
        assert coop.health.failures(str(HOME)) == 0


class TestScrubHome:
    def test_scrub_quarantines_rotted_document(self):
        engine = make_engine(scrub_interval=1.0, scrub_budget=16)
        corrupt_store(engine, "/i.gif")
        engine.tick(2.0)  # first scrub round covers the whole site
        assert engine.integrity.is_quarantined("/i.gif")
        assert engine.integrity.counters.corruptions_detected == 1
        assert engine.log.count("quarantine") == 1
        # Non-HTML has no regeneration source: refuse to serve the rot.
        reply = get(engine, "/i.gif", now=2.1)
        assert reply.response.status == 503
        assert reply.response.headers.get("Retry-After") == "5"

    def test_quarantined_html_regenerates_from_template(self):
        engine = make_engine(scrub_interval=1.0, scrub_budget=16)
        corrupt_store(engine, "/d.html")
        engine.tick(2.0)
        assert engine.integrity.is_quarantined("/d.html")
        # The in-memory link template is the pre-corruption canonical
        # source: the next serve regenerates, replacing the bad bytes.
        reply = get(engine, "/d.html", now=2.1)
        assert reply.response.status == 200
        assert digest_matches(reply.response.body,
                              engine.graph.get("/d.html").digest)
        assert not engine.integrity.is_quarantined("/d.html")
        assert engine.integrity.counters.quarantines_cleared == 1
        assert not check_engine(engine)

    def test_author_update_clears_quarantine(self):
        engine = make_engine(scrub_interval=1.0, scrub_budget=16)
        corrupt_store(engine, "/i.gif")
        engine.tick(2.0)
        assert engine.integrity.is_quarantined("/i.gif")
        engine.update_document("/i.gif", b"GIF89a" + b"y" * 200)
        assert not engine.integrity.is_quarantined("/i.gif")
        assert get(engine, "/i.gif", now=2.2).response.status == 200

    def test_scrub_respects_budget_and_cursor_wraps(self):
        engine = make_engine(scrub_interval=1.0, scrub_budget=1)
        checked_before = engine.integrity.counters.scrub_checked
        for round_index in range(len(SITE)):
            engine.tick(2.0 + round_index)
        checked = engine.integrity.counters.scrub_checked - checked_before
        assert checked == len(SITE)  # one per round, whole site covered
        assert engine.integrity.counters.scrub_rounds == len(SITE)

    def test_scrub_disabled_by_zero_interval(self):
        engine = make_engine(scrub_interval=0.0)
        corrupt_store(engine, "/i.gif")
        engine.tick(100.0)
        assert not engine.integrity.is_quarantined("/i.gif")

    def test_config_rejects_negative_knobs(self):
        with pytest.raises(ConfigError):
            ServerConfig(scrub_interval=-1.0)
        with pytest.raises(ConfigError):
            ServerConfig(scrub_budget=0)
        with pytest.raises(ConfigError):
            ServerConfig(integrity_serve_sample=-1)


class TestScrubHosted:
    def test_scrub_drops_rotted_hosted_copy(self):
        coop = pulled_coop(scrub_interval=1.0)
        corrupt_store(coop, MIGRATED_D)
        coop.tick(2.0)
        hosted = coop.hosted[MIGRATED_D]
        assert coop.integrity.is_quarantined(MIGRATED_D)
        assert not hosted.fetched
        assert hosted.version == "" and hosted.digest == ""
        assert MIGRATED_D not in coop.store
        assert not check_engine(coop)  # fsck invariant 9 holds

    def test_quarantine_notification_rides_validation(self):
        coop = pulled_coop(scrub_interval=1.0)
        corrupt_store(coop, MIGRATED_D)
        # The scrub quarantines and the same tick emits the notification.
        actions = coop.tick(2.0)
        notify = [a for a in actions if a.kind == "validate"
                  and a.request.headers.get(QUARANTINE_HEADER)]
        assert len(notify) == 1
        assert notify[0].peer == HOME
        assert notify[0].request.target == "/d.html"
        # No version header: the home must answer substantively, not 304.
        assert notify[0].request.headers.get("X-DCWS-Version") is None
        # Not re-sent while the first notification is in flight.
        assert not [a for a in coop.tick(2.2) if a.kind == "validate"
                    and a.request.headers.get(QUARANTINE_HEADER)]

    def test_failed_notification_rearms(self):
        coop = pulled_coop(scrub_interval=1.0)
        corrupt_store(coop, MIGRATED_D)
        notify = [a for a in coop.tick(2.0) if a.kind == "validate"
                  and a.request.headers.get(QUARANTINE_HEADER)][0]
        coop.complete_action(notify, None, now=2.2)  # transport failed
        again = [a for a in coop.tick(2.3) if a.kind == "validate"
                 and a.request.headers.get(QUARANTINE_HEADER)]
        assert len(again) == 1  # retried next tick

    def test_home_drops_reported_holder_and_answers_301(self):
        home = make_engine(replication_k=2, max_replicas=2)
        home.policy.force_migrate("/d.html", COOP, now=0.5)
        coop = pulled_coop(scrub_interval=1.0)
        corrupt_store(coop, MIGRATED_D)
        notify = [a for a in coop.tick(2.0) if a.kind == "validate"
                  and a.request.headers.get(QUARANTINE_HEADER)][0]
        reply = home.handle_request(notify.request, 2.2)
        assert reply.response.status == 301
        assert reply.response.headers.get("Location") == \
            "http://home:8001/d.html"
        assert home.integrity.counters.holder_quarantines_reported == 1
        assert home.log.count("holder_quarantined") == 1
        # No surviving replica beyond home: full revocation, back home.
        assert COOP not in home.graph.get("/d.html").locations()
        # The co-op's validation completion then discards its entry and
        # lifts the quarantine.
        coop.complete_action(notify, reply.response, now=2.3)
        assert MIGRATED_D not in coop.hosted
        assert not coop.integrity.is_quarantined(MIGRATED_D)

    def test_home_ignores_report_from_non_holder(self):
        home = make_engine()
        request = Request(method="GET", target="/d.html")
        request.headers.set(PURPOSE_HEADER, "validation")
        request.headers.set(QUARANTINE_HEADER, "1")
        reply = home.handle_request(request, 1.0)
        # No sender, no holder to drop — the document stays put.
        assert home.integrity.counters.holder_quarantines_reported == 0
        assert home.graph.get("/d.html").location == HOME
        assert reply.response.status == 200


class TestServeSampling:
    def test_home_cache_miss_detects_rot(self):
        engine = make_engine(integrity_serve_sample=1, scrub_interval=0.0)
        corrupt_store(engine, "/i.gif")
        reply = get(engine, "/i.gif")
        assert reply.response.status == 503
        assert engine.integrity.is_quarantined("/i.gif")
        assert engine.integrity.counters.serve_checks == 1

    def test_hosted_cache_miss_detects_rot_and_repulls(self):
        coop = pulled_coop(integrity_serve_sample=1, scrub_interval=0.0,
                           byte_cache_bytes=0, response_cache_entries=0)
        corrupt_store(coop, MIGRATED_D)
        result = get(coop, MIGRATED_D)
        # Quarantined and immediately re-pulled; the pull announces the
        # quarantine so the home repairs the replication group.
        assert isinstance(result, PullFromHome)
        assert result.request.headers.get(QUARANTINE_HEADER) == "1"
        assert coop.integrity.is_quarantined(MIGRATED_D)

    def test_sampling_rate_skips_most_reads(self):
        engine = make_engine(integrity_serve_sample=1000,
                             scrub_interval=0.0,
                             response_cache_entries=0)
        for i in range(10):
            get(engine, "/e.html", now=1.0 + i * 0.01)
        assert engine.integrity.counters.serve_checks == 0


class TestDurability:
    def test_snapshot_roundtrips_digests_and_quarantine(self):
        engine = make_engine(scrub_interval=1.0, scrub_budget=16)
        corrupt_store(engine, "/i.gif")
        engine.tick(2.0)
        snapshot = snapshot_engine(engine, now=3.0)
        restarted = DCWSEngine(HOME, ServerConfig(stats_interval=60.0),
                               engine.store, peers=[COOP])
        restarted.initialize(3.5)
        restore_engine(restarted, snapshot, now=4.0)
        assert restarted.graph.get("/d.html").digest == \
            body_digest(SITE["/d.html"])
        assert restarted.integrity.is_quarantined("/i.gif")
        record = restarted.integrity.get("/i.gif")
        assert record.kind == "home" and record.reason == "scrub"
        # Still refusing to serve the rot after the restart.
        assert get(restarted, "/i.gif", now=5.0).response.status == 503
        assert not check_engine(restarted)

    def test_snapshot_keeps_quarantined_hosted_entry_for_notification(self):
        coop = pulled_coop(scrub_interval=1.0)
        corrupt_store(coop, MIGRATED_D)
        coop.tick(2.0)
        snapshot = snapshot_engine(coop, now=3.0)
        restarted = DCWSEngine(COOP, ServerConfig(), MemoryStore(),
                               peers=[HOME])
        restarted.initialize(4.0)
        restore_engine(restarted, snapshot, now=4.0)
        # The unfetched-but-quarantined entry survived, so the home
        # still gets told after the restart.
        assert MIGRATED_D in restarted.hosted
        assert not restarted.hosted[MIGRATED_D].fetched
        assert restarted.integrity.is_quarantined(MIGRATED_D)
        notify = [a for a in restarted.tick(5.0) if a.kind == "validate"
                  and a.request.headers.get(QUARANTINE_HEADER)]
        assert len(notify) == 1

    def test_wal_replays_quarantine_and_clear(self, tmp_path):
        path = str(tmp_path / "home.wal")
        engine = make_engine(scrub_interval=1.0, scrub_budget=16)
        journal = WriteAheadJournal(path, location=str(HOME))
        engine.attach_journal(journal)
        corrupt_store(engine, "/d.html")
        engine.tick(2.0)                       # journals the quarantine
        assert get(engine, "/d.html", 2.1).response.status == 200
        journal.close()                        # regeneration cleared it

        records = scan_journal(path).records
        kinds = [r.kind for r in records]
        assert "quarantine" in kinds and "quarantine_cleared" in kinds

        replayed = make_engine(site=dict(SITE))
        for record in records:
            apply_record(replayed, record)
            apply_record(replayed, record)     # idempotent
        assert not replayed.integrity.active()

        # Replaying only the prefix up to the quarantine leaves the
        # document quarantined — and, because the on-disk bytes may be
        # the corrupt ones the crash preserved, template-less.
        partial = make_engine(site=dict(SITE))
        for record in records:
            apply_record(partial, record)
            if record.kind == "quarantine":
                break
        assert partial.integrity.is_quarantined("/d.html")
        assert get(partial, "/d.html", 9.0).response.status == 503
        assert not check_engine(partial)

    def test_regenerate_replay_installs_digest(self, tmp_path):
        path = str(tmp_path / "home.wal")
        engine = make_engine(scrub_interval=1.0, scrub_budget=16)
        journal = WriteAheadJournal(path, location=str(HOME))
        engine.attach_journal(journal)
        corrupt_store(engine, "/d.html")
        engine.tick(2.0)
        assert get(engine, "/d.html", 2.1).response.status == 200
        journal.close()
        replayed = make_engine(site=dict(SITE))
        for record in scan_journal(path).records:
            apply_record(replayed, record)
        assert replayed.graph.get("/d.html").digest == \
            engine.graph.get("/d.html").digest

    def test_fsck_flags_quarantined_entry_still_serving(self):
        coop = pulled_coop()
        coop.integrity.quarantine(MIGRATED_D, "hosted", "scrub",
                                  "sha256:aa", "sha256:bb", 1.0)
        # Deliberately broken: still fetched.
        violations = check_engine(coop)
        assert any("quarantined" in v for v in violations)


class TestCorruptFaultKind:
    def test_same_seed_same_flip_across_transports(self):
        exchange_plan = FaultPlan([FaultRule(kind="corrupt")], seed=7)
        disk_plan = FaultPlan([FaultRule(kind="corrupt", site="disk")],
                              seed=7)
        wire = exchange_plan.on_exchange("peer:1")
        rot = disk_plan.on_disk_read("/d.html")
        assert wire is not None and rot is not None
        assert wire.offset == rot.offset
        payload = b"the quick brown fox" * 10
        assert apply_corruption(wire, payload) == \
            apply_corruption(rot, payload)
        assert apply_corruption(wire, payload) != payload

    def test_corruption_is_silent_and_recorded(self):
        plan = FaultPlan([FaultRule(kind="corrupt")], seed=3)
        event = plan.on_exchange("peer:1")  # returned, never raised
        assert event is not None and event.kind == "corrupt"
        assert plan.schedule() == [(0, "exchange", "corrupt", "peer:1",
                                    event.offset)]

    def test_empty_payload_passes_through(self):
        plan = FaultPlan([FaultRule(kind="corrupt")], seed=3)
        event = plan.on_exchange("peer:1")
        assert apply_corruption(event, b"") == b""

    def test_disk_store_applies_seeded_corruption(self, tmp_path):
        plan = FaultPlan([FaultRule(kind="corrupt", site="disk",
                                    name="/a.html")], seed=11)
        store = DiskStore(str(tmp_path), faults=plan)
        store.put("/a.html", b"pristine bytes here")
        data = store.get("/a.html")
        assert data != b"pristine bytes here"
        assert len(data) == len(b"pristine bytes here")
        # Replay: an equal plan flips the identical byte.
        replay = FaultPlan([FaultRule(kind="corrupt", site="disk",
                                      name="/a.html")], seed=11)
        twin = DiskStore(str(tmp_path), faults=replay)
        assert twin.get("/a.html") == data


def _corrupt_event():
    plan = FaultPlan([FaultRule(kind="corrupt")], seed=5)
    return plan.on_exchange("home:8001")
