"""Unit tests for the ~migrate naming convention (paper section 3.4)."""

import pytest

from repro.core.document import Location
from repro.core.naming import (
    decode_migrated_path,
    encode_migrated_path,
    home_url,
    is_migrated_path,
    migrated_url,
)
from repro.errors import NamingError

HOME = Location("www.cs.arizona.edu", 80)
COOP = Location("coop.example.org", 8080)


class TestEncodeDecode:
    def test_paper_example(self):
        encoded = encode_migrated_path(HOME, "/dir1/dir2/foo.html")
        assert encoded == "/~migrate/www.cs.arizona.edu/80/dir1/dir2/foo.html"

    def test_round_trip(self):
        for path in ("/a.html", "/x/y/z.gif", "/deep/ly/nested/doc.html"):
            home, original = decode_migrated_path(
                encode_migrated_path(HOME, path))
            assert home == HOME
            assert original == path

    def test_nonstandard_port_round_trip(self):
        home = Location("h", 8123)
        decoded_home, path = decode_migrated_path(
            encode_migrated_path(home, "/doc.html"))
        assert decoded_home == home
        assert path == "/doc.html"

    def test_encode_rejects_relative(self):
        with pytest.raises(NamingError):
            encode_migrated_path(HOME, "doc.html")

    def test_encode_rejects_double_encoding(self):
        encoded = encode_migrated_path(HOME, "/a.html")
        with pytest.raises(NamingError):
            encode_migrated_path(COOP, encoded)

    @pytest.mark.parametrize("bad", [
        "/a.html",                      # not migrated form
        "/~migrate/host",               # too short
        "/~migrate/host/80",            # no document path
        "/~migrate/host/notaport/a.html",
        "/~migrate/host/99999/a.html",  # port out of range
    ])
    def test_decode_rejects_malformed(self, bad):
        with pytest.raises(NamingError):
            decode_migrated_path(bad)

    def test_is_migrated_path(self):
        assert is_migrated_path("/~migrate/h/80/a.html")
        assert not is_migrated_path("/a.html")
        assert not is_migrated_path("/dir/~migrate/h/80/a.html")


class TestUrls:
    def test_migrated_url(self):
        url = migrated_url(COOP, HOME, "/a/b.html")
        assert str(url) == ("http://coop.example.org:8080/~migrate/"
                            "www.cs.arizona.edu/80/a/b.html")

    def test_home_url(self):
        assert str(home_url(HOME, "/a.html")) == \
            "http://www.cs.arizona.edu/a.html"

    def test_location_parse_and_str(self):
        location = Location.parse("host:8042")
        assert location == Location("host", 8042)
        assert str(location) == "host:8042"

    def test_location_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            Location.parse("hostonly")
        with pytest.raises(ValueError):
            Location.parse(":80")
