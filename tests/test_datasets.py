"""Tests for the four paper data sets and the synthetic generator.

Each generated corpus must reproduce the published statistics (section
5.2) within tolerance, carry the documented topology (hot images, entry
points), and parse cleanly with the project's own HTML parser.
"""

import pytest

from repro.datasets import (
    DATASET_BUILDERS,
    build_lod,
    build_mapug,
    build_sblog,
    build_sequoia,
    build_synthetic_site,
)
from repro.html.links import extract_links
from repro.html.parser import parse_html


def links_of(site, name):
    return extract_links(parse_html(site.documents[name].decode("latin-1")))


class TestMapug:
    SITE = build_mapug()

    def test_published_statistics(self):
        stats = self.SITE.stats
        # Paper: 1,534 documents, 28,998 links, 5,918 KB.
        assert stats.documents == pytest.approx(1534, rel=0.02)
        assert stats.links == pytest.approx(28998, rel=0.15)
        assert stats.total_kbytes == pytest.approx(5918, rel=0.15)

    def test_entry_point_exists(self):
        assert self.SITE.entry_points == ["/index.html"]
        assert "/index.html" in self.SITE.documents

    def test_messages_carry_six_buttons(self):
        images = [l for l in links_of(self.SITE, "/msg/m0100.html")
                  if l.embedded]
        assert len(images) == 6
        assert all(v.value.startswith("/buttons/") for v in images)

    def test_buttons_are_hot(self):
        # Every message references every button: the canonical hot spot.
        referencing = sum(
            1 for name in self.SITE.documents
            if name.startswith("/msg/") and
            any(l.value == "/buttons/next.gif"
                for l in links_of(self.SITE, name)))
        assert referencing == sum(1 for n in self.SITE.documents
                                  if n.startswith("/msg/"))

    def test_thread_navigation_links(self):
        links = {l.value for l in links_of(self.SITE, "/msg/m0100.html")}
        assert "/msg/m0101.html" in links   # next
        assert "/msg/m0099.html" in links   # previous

    def test_deterministic(self):
        assert build_mapug(seed=3).documents == build_mapug(seed=3).documents
        assert build_mapug(seed=3).documents != build_mapug(seed=4).documents


class TestSblog:
    SITE = build_sblog()

    def test_published_statistics(self):
        stats = self.SITE.stats
        # Paper: 402 documents, 57,531 links, 8,468 KB.
        assert stats.documents == pytest.approx(402, rel=0.02)
        assert stats.links == pytest.approx(57531, rel=0.15)
        assert stats.total_kbytes == pytest.approx(8468, rel=0.15)

    def test_single_image(self):
        assert self.SITE.stats.images == 1

    def test_bar_jpeg_extremely_popular(self):
        detail_links = links_of(self.SITE, "/detail/file_0001.html")
        bars = [l for l in detail_links if l.value == "/img/bar.jpg"]
        assert len(bars) > 100  # one per histogram bar

    def test_every_html_page_references_bar(self):
        html_names = [n for n in self.SITE.documents if n.endswith(".html")]
        for name in html_names[:20]:
            values = {l.value for l in links_of(self.SITE, name)}
            assert "/img/bar.jpg" in values


class TestLod:
    SITE = build_lod()

    def test_published_statistics(self):
        stats = self.SITE.stats
        # Paper: 349 documents (240 images), 1,433 links, 750 KB.
        assert stats.documents == pytest.approx(349, rel=0.02)
        assert stats.images == 240
        assert stats.links == pytest.approx(1433, rel=0.15)
        assert stats.total_kbytes == pytest.approx(750, rel=0.15)

    def test_table_pages_have_fifty_thumbnails(self):
        images = [l for l in links_of(self.SITE, "/tables/t0.html")
                  if l.embedded]
        assert len(images) == 50

    def test_bimodal_image_sizes(self):
        sizes = [len(data) for name, data in self.SITE.documents.items()
                 if name.startswith("/img/")]
        small = [s for s in sizes if s < 2500]
        large = [s for s in sizes if s >= 2500]
        assert len(small) == pytest.approx(len(large), abs=5)
        assert sum(small) / len(small) == pytest.approx(1536, rel=0.25)
        assert sum(large) / len(large) == pytest.approx(3584, rel=0.25)

    def test_no_single_hot_image(self):
        # No image is referenced by more than a handful of pages.
        from collections import Counter

        counter = Counter()
        for name in self.SITE.documents:
            if name.endswith(".html"):
                for link in links_of(self.SITE, name):
                    if link.embedded:
                        counter[link.value] += 1
        most_common = counter.most_common(1)[0][1]
        html_count = self.SITE.stats.html_documents
        assert most_common < html_count / 4


class TestSequoia:
    SITE = build_sequoia()

    def test_structure(self):
        stats = self.SITE.stats
        assert stats.documents == 131          # 130 rasters + front page
        assert stats.links == 130              # one hyperlink per raster
        assert stats.images == 130

    def test_sizes_scaled_from_paper_range(self):
        from repro.datasets.sequoia import DEFAULT_SCALE

        sizes = [len(d) for n, d in self.SITE.documents.items()
                 if n.startswith("/raster/")]
        assert min(sizes) >= 1_000_000 * DEFAULT_SCALE * 0.9
        assert max(sizes) <= 2_800_000 * DEFAULT_SCALE * 1.1

    def test_full_scale_sizes(self):
        site = build_sequoia(scale=1.0, seed=1)
        sizes = [len(d) for n, d in site.documents.items()
                 if n.startswith("/raster/")]
        assert 1_000_000 <= min(sizes)
        assert max(sizes) <= 2_800_000

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            build_sequoia(scale=0.0)
        with pytest.raises(ValueError):
            build_sequoia(scale=1.5)

    def test_front_page_links_every_raster(self):
        values = {l.value for l in links_of(self.SITE, "/index.html")}
        assert len([v for v in values if v.startswith("/raster/")]) == 130


class TestSynthetic:
    def test_page_and_image_counts(self):
        site = build_synthetic_site(pages=30, images=10, seed=1)
        stats = site.stats
        assert stats.html_documents == 30
        assert stats.images == 10

    def test_full_hot_spot_skew(self):
        site = build_synthetic_site(pages=20, images=10, image_skew=1.0,
                                    images_per_page=2, seed=1)
        for name in site.documents:
            if name.endswith(".html"):
                embedded = [l.value for l in links_of(site, name)
                            if l.embedded]
                assert set(embedded) <= {"/img/i000.gif"}

    def test_ring_guarantees_reachability(self):
        site = build_synthetic_site(pages=10, images=0, fanout=1, seed=1)
        for index in range(10):
            values = {l.value for l in links_of(site, f"/page{index:03d}.html")}
            assert f"/page{(index + 1) % 10:03d}.html" in values

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            build_synthetic_site(pages=0)
        with pytest.raises(ValueError):
            build_synthetic_site(image_skew=2.0)

    def test_entry_count(self):
        site = build_synthetic_site(pages=10, entry_count=3, seed=1)
        assert len(site.entry_points) == 3


class TestRegistry:
    def test_all_builders_present(self):
        assert set(DATASET_BUILDERS) == {"mapug", "sblog", "lod", "sequoia"}

    def test_entry_points_always_in_documents(self):
        for builder in DATASET_BUILDERS.values():
            site = builder(seed=0)
            for entry in site.entry_points:
                assert entry in site.documents
