"""Unit tests for the per-sequence client cache."""

from repro.client.cache import ClientCache


class TestClientCache:
    def test_miss_then_hit(self):
        cache = ClientCache()
        assert cache.lookup("http://h/a.html") is None
        cache.store("http://h/a.html", 1200, ["b.html"])
        assert cache.lookup("http://h/a.html") == (1200, ["b.html"])
        assert cache.hits == 1
        assert cache.misses == 1

    def test_reset_clears_entries_not_counters(self):
        cache = ClientCache()
        cache.store("u", 1, [])
        cache.lookup("u")
        cache.reset()
        assert cache.lookup("u") is None
        assert cache.hits == 1
        assert cache.misses == 1

    def test_location_sensitive_keys(self):
        # The same document at home and at a co-op are distinct entries,
        # exactly as a browser sees distinct URLs.
        cache = ClientCache()
        cache.store("http://home/d.html", 10, [])
        assert cache.lookup("http://coop/~migrate/home/80/d.html") is None

    def test_contains_and_len(self):
        cache = ClientCache()
        cache.store("u", 1, [])
        assert "u" in cache
        assert "v" not in cache
        assert len(cache) == 1

    def test_links_copied(self):
        cache = ClientCache()
        links = ["a"]
        cache.store("u", 1, links)
        links.append("b")
        __, stored = cache.lookup("u")
        assert stored == ["a"]
