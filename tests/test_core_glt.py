"""Unit tests for the Global Load Table."""

from repro.core.document import Location
from repro.core.glt import GlobalLoadTable
from repro.http.piggyback import LoadReport

OWN = Location("own", 80)
A = Location("a", 80)
B = Location("b", 80)


def table_with(*reports: LoadReport) -> GlobalLoadTable:
    table = GlobalLoadTable(OWN)
    table.merge(reports)
    return table


class TestObserve:
    def test_newest_timestamp_wins(self):
        table = table_with(LoadReport("a:80", 1.0, 10.0))
        assert table.observe(LoadReport("a:80", 2.0, 11.0)) is True
        assert table.get(A).metric == 2.0

    def test_older_report_ignored(self):
        table = table_with(LoadReport("a:80", 2.0, 11.0))
        assert table.observe(LoadReport("a:80", 1.0, 10.0)) is False
        assert table.get(A).metric == 2.0

    def test_equal_timestamp_keeps_existing(self):
        table = table_with(LoadReport("a:80", 1.0, 10.0))
        assert table.observe(LoadReport("a:80", 99.0, 10.0)) is False

    def test_update_own(self):
        table = GlobalLoadTable(OWN)
        table.update_own(5.0, 1.0)
        assert table.get(OWN).metric == 5.0
        table.update_own(7.0, 2.0)
        assert table.get(OWN).metric == 7.0

    def test_merge_returns_change_count(self):
        table = GlobalLoadTable(OWN)
        changed = table.merge([LoadReport("a:80", 1.0, 1.0),
                               LoadReport("a:80", 1.0, 0.5),
                               LoadReport("b:80", 2.0, 1.0)])
        assert changed == 2


class TestQueries:
    def test_least_loaded_excludes_self(self):
        table = GlobalLoadTable(OWN)
        table.update_own(0.0, 1.0)  # own is the least loaded but excluded
        table.merge([LoadReport("a:80", 5.0, 1.0),
                     LoadReport("b:80", 3.0, 1.0)])
        assert table.least_loaded() == B

    def test_least_loaded_with_exclusions(self):
        table = table_with(LoadReport("a:80", 1.0, 1.0),
                           LoadReport("b:80", 2.0, 1.0))
        assert table.least_loaded(exclude=[A]) == B

    def test_least_loaded_empty(self):
        assert GlobalLoadTable(OWN).least_loaded() is None

    def test_least_loaded_tie_breaks_by_name(self):
        table = table_with(LoadReport("b:80", 1.0, 1.0),
                           LoadReport("a:80", 1.0, 1.0))
        assert table.least_loaded() == A

    def test_mean_metric(self):
        table = GlobalLoadTable(OWN)
        table.update_own(4.0, 1.0)
        table.observe(LoadReport("a:80", 2.0, 1.0))
        assert table.mean_metric() == 3.0

    def test_mean_metric_empty(self):
        assert GlobalLoadTable(OWN).mean_metric() == 0.0

    def test_peers_excludes_own(self):
        table = GlobalLoadTable(OWN)
        table.update_own(1.0, 1.0)
        table.observe(LoadReport("a:80", 1.0, 1.0))
        assert table.peers() == [A]
        assert set(table.servers()) == {OWN, A}

    def test_register_bootstraps_unknown_peer(self):
        table = GlobalLoadTable(OWN)
        table.register(A)
        assert A in table
        # Any real report supersedes the bootstrap row.
        assert table.observe(LoadReport("a:80", 1.0, 0.0)) is True

    def test_register_does_not_clobber(self):
        table = table_with(LoadReport("a:80", 9.0, 5.0))
        table.register(A)
        assert table.get(A).metric == 9.0

    def test_snapshot_sorted_and_stable(self):
        table = table_with(LoadReport("b:80", 1.0, 1.0),
                           LoadReport("a:80", 2.0, 1.0))
        names = [r.server for r in table.snapshot()]
        assert names == ["a:80", "b:80"]


class TestStalenessAndHealth:
    def test_stale_peers(self):
        table = table_with(LoadReport("a:80", 1.0, 0.0),
                           LoadReport("b:80", 1.0, 9.0))
        assert table.stale_peers(now=10.0, max_age=5.0) == [A]

    def test_own_row_never_stale(self):
        table = GlobalLoadTable(OWN)
        table.update_own(1.0, 0.0)
        assert table.stale_peers(now=100.0, max_age=1.0) == []

    def test_ping_failures_and_removal(self):
        table = table_with(LoadReport("a:80", 1.0, 1.0))
        assert table.record_ping_failure(A) == 1
        assert table.record_ping_failure(A) == 2
        table.clear_ping_failures(A)
        assert table.record_ping_failure(A) == 1
        table.remove(A)
        assert A not in table

    def test_observe_clears_failures(self):
        table = table_with(LoadReport("a:80", 1.0, 1.0))
        table.record_ping_failure(A)
        table.observe(LoadReport("a:80", 1.0, 2.0))
        assert table.record_ping_failure(A) == 1


class TestMergeAlgebra:
    def test_merge_is_idempotent(self):
        reports = [LoadReport("a:80", 1.0, 1.0), LoadReport("b:80", 2.0, 2.0)]
        table = table_with(*reports)
        assert table.merge(reports) == 0

    def test_merge_is_commutative(self):
        r1 = LoadReport("a:80", 1.0, 1.0)
        r2 = LoadReport("a:80", 2.0, 2.0)
        t_forward = table_with(r1, r2)
        t_backward = table_with(r2, r1)
        assert t_forward.get(A) == t_backward.get(A)
