"""Unit tests for engine state snapshots (restart recovery)."""

import json
import os

import pytest

from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.http.messages import Request
from repro.http.piggyback import LoadReport
from repro.server.engine import DCWSEngine, PURPOSE_HEADER, PullFromHome
from repro.server.filestore import MemoryStore
from repro.server.persistence import (
    SnapshotError,
    load_snapshot,
    restore_engine,
    restore_from_file,
    save_snapshot,
    snapshot_engine,
)

HOME = Location("home", 8001)
COOP = Location("coop", 8002)

SITE = {
    "/index.html": b'<html><a href="d.html">D</a></html>',
    "/d.html": b'<html><a href="e.html">E</a></html>',
    "/e.html": b"<html>leaf</html>",
}


def make_engine(location=HOME, site=None):
    engine = DCWSEngine(location, ServerConfig(migration_hit_threshold=1.0),
                        MemoryStore(SITE if site is None else site),
                        entry_points=["/index.html"] if site is None else [],
                        peers=[COOP if location == HOME else HOME])
    engine.initialize(0.0)
    return engine


def busy_engine():
    """An engine with migrations, hits, and GLT state worth saving."""
    engine = make_engine()
    engine.graph.record_hit("/d.html", 42)
    engine.policy.force_migrate("/d.html", COOP, now=5.0)
    engine.glt.update_own(17.0, 6.0)
    engine.glt.observe(LoadReport("coop:8002", 3.0, 6.0))
    return engine


class TestSnapshotRoundTrip:
    def test_snapshot_captures_migration_state(self):
        snapshot = snapshot_engine(busy_engine(), now=10.0)
        assert snapshot["documents"]["/d.html"]["location"] == "coop:8002"
        assert snapshot["migrations"] == {
            "/d.html": {"coop": "coop:8002", "migrated_at": 5.0}}
        assert any(row["server"] == "home:8001" and row["metric"] == 17.0
                   for row in snapshot["glt"])

    def test_restore_recreates_behaviour(self):
        original = busy_engine()
        snapshot = snapshot_engine(original, now=10.0)
        restarted = make_engine()
        restored = restore_engine(restarted, snapshot, now=20.0)
        assert restored == len(SITE)
        # The restarted server still redirects for the migrated document.
        reply = restarted.handle_request(Request("GET", "/d.html"), 21.0)
        assert reply.response.status == 301
        assert "coop:8002" in reply.response.headers.get("Location")
        # And its policy can still revoke it.
        assert restarted.policy.migrated_names() == ["/d.html"]

    def test_restore_preserves_hits_and_versions(self):
        original = busy_engine()
        snapshot = snapshot_engine(original, now=10.0)
        restarted = make_engine()
        restore_engine(restarted, snapshot, now=20.0)
        assert restarted.graph.get("/d.html").hits == \
            original.graph.get("/d.html").hits
        assert restarted.graph.get("/d.html").version == \
            original.graph.get("/d.html").version

    def test_snapshot_is_json_serializable(self):
        json.dumps(snapshot_engine(busy_engine(), now=1.0))

    def test_documents_missing_from_disk_skipped(self):
        snapshot = snapshot_engine(busy_engine(), now=10.0)
        smaller = dict(SITE)
        del smaller["/e.html"]
        restarted = DCWSEngine(HOME, ServerConfig(),
                               MemoryStore(smaller),
                               entry_points=["/index.html"])
        restarted.initialize(0.0)
        restored = restore_engine(restarted, snapshot, now=20.0)
        assert restored == len(smaller)


class TestHostedState:
    def coop_with_copy(self):
        coop = make_engine(location=COOP, site={})
        home = make_engine()
        pull = coop.handle_request(
            Request("GET", "/~migrate/home/8001/d.html"), 1.0)
        pull.request.headers.set(PURPOSE_HEADER, "migration-pull")
        upstream = home.handle_request(pull.request, 1.1)
        coop.complete_pull(pull, upstream.response, 1.2)
        return coop

    def test_hosted_copies_survive_restart(self, tmp_path):
        coop = self.coop_with_copy()
        path = str(tmp_path / "coop.snapshot")
        save_snapshot(coop, path, now=2.0)
        restarted = DCWSEngine(COOP, ServerConfig(),
                               coop.store,  # same disk
                               peers=[HOME])
        restarted.initialize(0.0)
        restored = restore_from_file(restarted, path, now=3.0)
        assert restored >= 0
        key = "/~migrate/home/8001/d.html"
        assert restarted.hosted[key].fetched
        reply = restarted.handle_request(Request("GET", key), 4.0)
        assert reply.response.status == 200

    def test_hosted_without_content_restored_unfetched(self, tmp_path):
        coop = self.coop_with_copy()
        path = str(tmp_path / "coop.snapshot")
        save_snapshot(coop, path, now=2.0)
        fresh = DCWSEngine(COOP, ServerConfig(), MemoryStore(),  # empty disk
                           peers=[HOME])
        fresh.initialize(0.0)
        restore_from_file(fresh, path, now=3.0)
        # The hosted entry survives without its bytes: it comes back
        # unfetched and re-pulls from home on demand instead of 404ing
        # (the home server still redirects here).
        key = "/~migrate/home/8001/d.html"
        assert key in fresh.hosted
        assert not fresh.hosted[key].fetched
        assert fresh.hosted[key].version == ""
        retry = fresh.handle_request(Request("GET", key), 4.0)
        assert isinstance(retry, PullFromHome)


class TestInFlightState:
    """Snapshots taken while work is in flight must round-trip safely:
    a crash can land between any two steps of a pull or a splice."""

    def test_mid_flight_pull_restarts_as_a_fresh_pull(self, tmp_path):
        coop = make_engine(location=COOP, site={})
        key = "/~migrate/home/8001/d.html"
        pull = coop.handle_request(Request("GET", key), 1.0)
        assert isinstance(pull, PullFromHome)
        # Crash before complete_pull: the hosted entry is unfetched.
        path = str(tmp_path / "coop.snapshot")
        save_snapshot(coop, path, now=1.5)
        snapshot = load_snapshot(path)
        assert key not in snapshot["hosted"]  # nothing durable to save
        restarted = DCWSEngine(COOP, ServerConfig(), coop.store,
                               peers=[HOME])
        restarted.initialize(0.0)
        restore_from_file(restarted, path, now=2.0)
        # The restarted co-op re-pulls on demand instead of serving a
        # half-transferred copy.
        retry = restarted.handle_request(Request("GET", key), 3.0)
        assert isinstance(retry, PullFromHome)

    def test_dirty_documents_survive_restart(self):
        original = busy_engine()
        # Migrating /d.html dirtied its referrer (the link must be
        # rewritten to point at the co-op).
        assert original.graph.get("/index.html").dirty
        snapshot = snapshot_engine(original, now=10.0)
        restarted = make_engine()
        restore_engine(restarted, snapshot, now=20.0)
        assert restarted.graph.get("/index.html").dirty

    def test_snapshot_with_open_breaker_round_trips(self, tmp_path):
        from repro.client.breaker import CircuitBreaker

        engine = busy_engine()
        engine.breaker = CircuitBreaker(failure_threshold=1, jitter=0.0)
        engine.breaker.check(str(COOP))
        engine.breaker.record_failure(str(COOP))
        assert engine.breaker.is_open(str(COOP))
        path = str(tmp_path / "home.snapshot")
        save_snapshot(engine, path, now=10.0)
        restarted = make_engine()
        restore_from_file(restarted, path, now=20.0)
        # Breaker state is runtime-only: a restarted server probes its
        # peers afresh rather than inheriting a stale open circuit.
        assert restarted.breaker is None
        assert restarted.policy.migrated_names() == ["/d.html"]


class TestFileHandling:
    def test_save_then_load(self, tmp_path):
        path = str(tmp_path / "state" / "engine.snapshot")
        save_snapshot(busy_engine(), path, now=1.0)
        snapshot = load_snapshot(path)
        assert snapshot["location"] == "home:8001"

    def test_missing_file_returns_zero(self, tmp_path):
        engine = make_engine()
        assert restore_from_file(engine, str(tmp_path / "nope"), 1.0) == 0

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "bad.snapshot"
        path.write_text("{not json")
        with pytest.raises(SnapshotError):
            load_snapshot(str(path))

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "old.snapshot"
        path.write_text(json.dumps({"snapshot_version": 99}))
        with pytest.raises(SnapshotError):
            load_snapshot(str(path))

    def test_wrong_server_raises(self):
        snapshot = snapshot_engine(busy_engine(), now=1.0)
        other = make_engine(location=Location("other", 9000), site={})
        with pytest.raises(SnapshotError):
            restore_engine(other, snapshot, now=2.0)

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        path = str(tmp_path / "engine.snapshot")
        save_snapshot(busy_engine(), path, now=1.0)
        save_snapshot(busy_engine(), path, now=2.0)  # overwrite
        leftovers = [f for f in os.listdir(tmp_path) if f != "engine.snapshot"]
        assert leftovers == []
