"""Unit tests for the piggybacked load-report extension headers."""

import pytest

from repro.errors import HTTPError
from repro.http.headers import Headers
from repro.http.piggyback import (
    LOAD_HEADER,
    LoadReport,
    attach_load_reports,
    extract_load_reports,
    extract_sender,
)


class TestCodec:
    def test_encode_decode_round_trip(self):
        report = LoadReport(server="host:8080", metric=123.5, timestamp=17.25)
        assert LoadReport.decode(report.encode()) == report

    def test_decode_tolerates_spacing(self):
        report = LoadReport.decode(" server=h:80 ;  metric=1.5 ; ts=2.0 ")
        assert report == LoadReport("h:80", 1.5, 2.0)

    @pytest.mark.parametrize("bad", [
        "server=h:80; metric=1.5",          # missing ts
        "server=h:80; metric=abc; ts=1",    # non-numeric
        "garbage",
        "metric=1; ts=2",                   # missing server
    ])
    def test_decode_rejects_malformed(self, bad):
        with pytest.raises(HTTPError):
            LoadReport.decode(bad)

    def test_precision_survives(self):
        report = LoadReport("h:80", 0.000123, 1234567.891)
        decoded = LoadReport.decode(report.encode())
        assert decoded.metric == pytest.approx(report.metric, rel=1e-3)
        assert decoded.timestamp == pytest.approx(report.timestamp, abs=1e-5)


class TestAttachExtract:
    def test_attach_then_extract(self):
        headers = Headers()
        reports = [LoadReport("a:80", 1.0, 10.0), LoadReport("b:80", 2.0, 11.0)]
        attach_load_reports(headers, "a:80", reports)
        assert extract_sender(headers) == "a:80"
        assert extract_load_reports(headers) == reports

    def test_attach_replaces_previous(self):
        headers = Headers()
        attach_load_reports(headers, "a:80", [LoadReport("a:80", 1.0, 1.0)])
        attach_load_reports(headers, "a:80", [LoadReport("a:80", 9.0, 2.0)])
        reports = extract_load_reports(headers)
        assert len(reports) == 1
        assert reports[0].metric == 9.0

    def test_plain_client_has_no_reports(self):
        headers = Headers([("Host", "h")])
        assert extract_load_reports(headers) == []
        assert extract_sender(headers) == ""

    def test_malformed_header_raises(self):
        headers = Headers()
        headers.add(LOAD_HEADER, "not a report")
        with pytest.raises(HTTPError):
            extract_load_reports(headers)

    def test_empty_report_list(self):
        headers = Headers()
        attach_load_reports(headers, "a:80", [])
        assert extract_load_reports(headers) == []
        assert extract_sender(headers) == "a:80"
