"""Unit tests for hyperlink rewriting and regeneration."""

from repro.html.links import extract_links
from repro.html.parser import parse_html
from repro.html.rewriter import count_rewritable_links, rewrite_html, rewrite_links
from repro.html.serializer import serialize_html


class TestRewriteLinks:
    def test_targeted_rewrite(self):
        doc = parse_html('<a href="d.html">D</a><a href="e.html">E</a>')
        changed = rewrite_links(
            doc, lambda v: "http://coop/~migrate/h/80/d.html"
            if v == "d.html" else None)
        assert changed == 1
        values = [l.value for l in extract_links(doc)]
        assert values == ["http://coop/~migrate/h/80/d.html", "e.html"]

    def test_none_leaves_unchanged(self):
        source = '<a href="x.html">x</a>'
        doc = parse_html(source)
        assert rewrite_links(doc, lambda v: None) == 0
        assert serialize_html(doc) == source

    def test_identity_value_not_counted(self):
        doc = parse_html('<a href="x.html">x</a>')
        assert rewrite_links(doc, lambda v: v) == 0

    def test_images_rewritten_too(self):
        doc = parse_html('<img src="i.gif">')
        assert rewrite_links(doc, lambda v: "http://c/~migrate/h/80/i.gif") == 1

    def test_fragment_links_not_visited(self):
        doc = parse_html('<a href="#top">top</a>')
        seen = []
        rewrite_links(doc, lambda v: seen.append(v))
        assert seen == []

    def test_unrelated_attributes_preserved(self):
        doc = parse_html('<a class="nav" href="a.html" target="_top">x</a>')
        rewrite_links(doc, lambda v: "/new.html")
        out = serialize_html(doc)
        assert 'class="nav"' in out
        assert 'target="_top"' in out
        assert 'href="/new.html"' in out

    def test_count_rewritable(self):
        doc = parse_html('<a href="a">1</a><img src="b"><a href="#f">2</a>')
        assert count_rewritable_links(doc) == 2


class TestRewriteHtml:
    def test_full_pipeline(self):
        out = rewrite_html('<p><a href="a.html">x</a></p>',
                           lambda v: "/moved/a.html")
        assert 'href="/moved/a.html"' in out

    def test_round_trip_preserves_link_set(self):
        source = ('<html><body><a href="a.html">1</a>'
                  '<img src="i.gif"><frame src="f.html"></body></html>')
        once = rewrite_html(source, lambda v: None)
        twice = rewrite_html(once, lambda v: None)
        assert once == twice  # canonical form is a fixed point

    def test_migration_then_revocation_is_identity_on_links(self):
        source = '<a href="/d.html">D</a>'
        migrated = rewrite_html(
            source, lambda v: "http://c:81/~migrate/h/80/d.html"
            if v == "/d.html" else None)
        restored = rewrite_html(
            migrated, lambda v: "/d.html"
            if v == "http://c:81/~migrate/h/80/d.html" else None)
        assert [l.value for l in extract_links(parse_html(restored))] \
            == ["/d.html"]
