"""Unit tests for the analysis utilities."""

import pytest

from repro.analysis.scaling import (
    crossover_point,
    linear_fit,
    pairs_sorted,
    relative_spread,
    saturation_knee,
    scaling_efficiency,
)
from repro.analysis.textplot import text_plot


class TestLinearFit:
    def test_perfect_line(self):
        fit = linear_fit([1, 2, 3, 4], [3, 5, 7, 9])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(10) == pytest.approx(21.0)

    def test_noisy_line_r_squared_below_one(self):
        fit = linear_fit([1, 2, 3, 4], [3, 5.5, 6.5, 9])
        assert 0.9 < fit.r_squared < 1.0

    def test_flat_series(self):
        fit = linear_fit([1, 2, 3], [5, 5, 5])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_fit([1], [2])
        with pytest.raises(ValueError):
            linear_fit([1, 1], [2, 3])
        with pytest.raises(ValueError):
            linear_fit([1, 2], [1])


class TestScalingEfficiency:
    def test_perfectly_linear(self):
        assert scaling_efficiency([2, 4, 8], [100, 200, 400]) == \
            pytest.approx(1.0)

    def test_sublinear(self):
        # SBLog-style: 4x hardware, 2.4x throughput.
        assert scaling_efficiency([2, 8], [1000, 2400]) == pytest.approx(0.6)

    def test_order_independent(self):
        assert scaling_efficiency([8, 2], [400, 100]) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            scaling_efficiency([2], [100])
        with pytest.raises(ValueError):
            scaling_efficiency([2, 2], [1, 2])


class TestSaturationKnee:
    def test_finds_plateau_start(self):
        # Rises then flat at ~1000 from x=100 on.
        xs = [25, 50, 75, 100, 125, 150]
        ys = [250, 500, 750, 990, 1005, 995]
        assert saturation_knee(xs, ys) == 100

    def test_still_rising_returns_none(self):
        assert saturation_knee([1, 2, 3], [10, 20, 30]) is None

    def test_all_zero_returns_none(self):
        assert saturation_knee([1, 2], [0, 0]) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            saturation_knee([], [])


class TestCrossover:
    def test_simple_crossover(self):
        xs = [0, 1, 2, 3]
        a = [0, 1, 2, 3]       # grows slowly
        b = [2, 2, 2, 2]       # flat
        x = crossover_point(xs, a, b)
        assert x == pytest.approx(2.0)

    def test_no_crossover(self):
        xs = [0, 1, 2]
        assert crossover_point(xs, [1, 2, 3], [5, 6, 7]) is None

    def test_touching_counts(self):
        xs = [0, 1, 2]
        assert crossover_point(xs, [0, 2, 4], [0, 1, 1]) is not None


class TestHelpers:
    def test_relative_spread(self):
        assert relative_spread([10, 10, 10]) == 0.0
        assert relative_spread([5, 10, 15]) == pytest.approx(1.0)
        assert relative_spread([]) == 0.0

    def test_pairs_sorted(self):
        xs, ys = pairs_sorted([3, 1, 2], [30, 10, 20])
        assert xs == (1, 2, 3)
        assert ys == (10, 20, 30)


class TestTextPlot:
    def test_renders_all_series(self):
        chart = text_plot({"cps": [0, 50, 100], "bps": [100, 50, 0]},
                          xs=[0, 1, 2], width=20, height=5, title="T")
        assert chart.startswith("T")
        assert "*" in chart and "o" in chart
        assert "bps" in chart and "cps" in chart

    def test_flat_series_renders(self):
        chart = text_plot({"flat": [5, 5, 5]}, xs=[0, 1, 2],
                          width=12, height=4)
        assert "*" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            text_plot({}, xs=[1])
        with pytest.raises(ValueError):
            text_plot({"a": [1, 2]}, xs=[1])
        with pytest.raises(ValueError):
            text_plot({"a": [1]}, xs=[1], width=2, height=2)
