"""Per-peer circuit breaker: state machine, backoff, probe budget."""

import pytest

from repro.client.breaker import (
    BreakerOpenError,
    CLOSED,
    CircuitBreaker,
    HALF_OPEN,
    OPEN,
    build_breaker,
)
from repro.core.config import ServerConfig


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(**kwargs) -> "tuple[CircuitBreaker, FakeClock]":
    clock = FakeClock()
    defaults = dict(failure_threshold=3, reset_timeout=1.0,
                    max_reset_timeout=8.0, jitter=0.0, clock=clock)
    defaults.update(kwargs)
    return CircuitBreaker(**defaults), clock


def trip(breaker: CircuitBreaker, peer: str = "p:80",
         times: int = 3) -> None:
    for __ in range(times):
        breaker.check(peer)
        breaker.record_failure(peer)


class TestStateMachine:
    def test_unknown_peer_is_closed(self):
        breaker, __ = make_breaker()
        assert breaker.state("p:80") == CLOSED
        breaker.check("p:80")  # admits

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, __ = make_breaker()
        trip(breaker, times=2)
        assert breaker.state("p:80") == CLOSED
        trip(breaker, times=1)
        assert breaker.state("p:80") == OPEN
        with pytest.raises(BreakerOpenError):
            breaker.check("p:80")

    def test_success_resets_the_failure_count(self):
        breaker, __ = make_breaker()
        trip(breaker, times=2)
        breaker.record_success("p:80")
        trip(breaker, times=2)
        assert breaker.state("p:80") == CLOSED

    def test_open_error_is_a_connection_error(self):
        breaker, __ = make_breaker()
        trip(breaker)
        try:
            breaker.check("p:80")
        except OSError as exc:  # every peer-failure handler catches it
            assert isinstance(exc, BreakerOpenError)
            assert exc.peer == "p:80"
            assert exc.retry_after > 0
        else:
            pytest.fail("expected BreakerOpenError")

    def test_half_open_after_backoff_then_closes_on_success(self):
        breaker, clock = make_breaker()
        trip(breaker)
        clock.advance(1.01)
        breaker.check("p:80")  # admitted as a probe
        assert breaker.state("p:80") == HALF_OPEN
        breaker.record_success("p:80")
        assert breaker.state("p:80") == CLOSED

    def test_half_open_probe_failure_reopens_with_doubled_backoff(self):
        breaker, clock = make_breaker()
        trip(breaker)
        clock.advance(1.01)
        breaker.check("p:80")
        breaker.record_failure("p:80")
        assert breaker.state("p:80") == OPEN
        # Second open: backoff doubles to 2 s.
        clock.advance(1.5)
        with pytest.raises(BreakerOpenError):
            breaker.check("p:80")
        clock.advance(0.6)
        breaker.check("p:80")  # 2.1 s elapsed: admitted

    def test_backoff_caps_at_max_reset_timeout(self):
        breaker, clock = make_breaker(failure_threshold=1)
        for __ in range(10):
            clock.advance(100.0)
            breaker.check("p:80")  # half-open probe (closed on round one)
            breaker.record_failure("p:80")
        snapshot = breaker.snapshot()["p:80"]
        assert snapshot["retry_at"] - clock.now == pytest.approx(8.0)

    def test_half_open_probe_budget_bounds_concurrent_probes(self):
        breaker, clock = make_breaker(half_open_probes=1)
        trip(breaker)
        clock.advance(1.01)
        breaker.check("p:80")  # first probe admitted
        with pytest.raises(BreakerOpenError):
            breaker.check("p:80")  # budget exhausted until it resolves
        breaker.record_success("p:80")
        breaker.check("p:80")  # closed again

    def test_peers_are_independent(self):
        breaker, __ = make_breaker()
        trip(breaker, peer="a:80")
        breaker.check("b:80")  # unaffected

    def test_jitter_stays_within_bounds(self):
        breaker, clock = make_breaker(jitter=0.5, seed=7)
        trip(breaker)
        retry_at = breaker.snapshot()["p:80"]["retry_at"]
        assert 1.0 <= retry_at <= 1.5 + 1e-9


class TestIntrospection:
    def test_is_open_only_inside_backoff_window(self):
        breaker, clock = make_breaker()
        trip(breaker)
        assert breaker.is_open("p:80")
        clock.advance(1.01)
        # Past retry_at: the peer is half-open-able, not excluded.
        assert not breaker.is_open("p:80")

    def test_total_trips_counts_closed_to_open_transitions(self):
        breaker, clock = make_breaker()
        trip(breaker)
        assert breaker.total_trips() == 1
        clock.advance(1.01)
        breaker.check("p:80")
        breaker.record_failure("p:80")  # half-open -> open again
        assert breaker.total_trips() == 2

    def test_snapshot_shape(self):
        breaker, __ = make_breaker()
        trip(breaker, times=1)
        breaker.record_success("p:80")
        snap = breaker.snapshot()["p:80"]
        assert snap["state"] == CLOSED
        assert snap["consecutive_failures"] == 0
        assert snap["last_success"] is not None

    def test_forget_drops_the_peer(self):
        breaker, __ = make_breaker()
        trip(breaker)
        breaker.forget("p:80")
        assert breaker.state("p:80") == CLOSED

    def test_forced_trip_opens_and_heals_normally(self):
        breaker, clock = make_breaker()
        breaker.trip("p:80")  # out-of-band death declaration
        assert breaker.state("p:80") == OPEN
        assert breaker.total_trips() == 1
        with pytest.raises(BreakerOpenError):
            breaker.check("p:80")
        clock.advance(1.01)
        breaker.check("p:80")  # half-open probe admitted
        breaker.record_success("p:80")
        assert breaker.state("p:80") == CLOSED


class TestBuildBreaker:
    def test_from_config_defaults(self):
        breaker = build_breaker(ServerConfig())
        assert isinstance(breaker, CircuitBreaker)
        assert breaker.failure_threshold == \
            ServerConfig().breaker_failure_threshold

    def test_disabled_by_config(self):
        assert build_breaker(ServerConfig(circuit_breaker=False)) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=2.0, max_reset_timeout=1.0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_probes=0)
        with pytest.raises(ValueError):
            CircuitBreaker(jitter=-0.1)
