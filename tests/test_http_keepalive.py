"""Persistent-connection semantics: header tokens and version defaults."""

from repro.http.headers import Headers
from repro.http.messages import (
    Request,
    Response,
    request_wants_keep_alive,
    response_allows_keep_alive,
)


class TestHasToken:
    def test_simple_token(self):
        headers = Headers([("Connection", "keep-alive")])
        assert headers.has_token("connection", "Keep-Alive")

    def test_token_list(self):
        headers = Headers([("Connection", "Upgrade, keep-alive")])
        assert headers.has_token("Connection", "keep-alive")
        assert headers.has_token("Connection", "upgrade")

    def test_no_substring_match(self):
        headers = Headers([("Connection", "keep-alive-ish")])
        assert not headers.has_token("Connection", "keep-alive")

    def test_absent_header(self):
        assert not Headers().has_token("Connection", "close")


class TestRequestSemantics:
    def test_http10_defaults_to_close(self):
        request = Request(method="GET", target="/")
        assert not request_wants_keep_alive(request)

    def test_http10_keep_alive_opt_in(self):
        request = Request(method="GET", target="/")
        request.headers.set("Connection", "keep-alive")
        assert request_wants_keep_alive(request)

    def test_http11_defaults_to_keep_alive(self):
        request = Request(method="GET", target="/", version="HTTP/1.1")
        assert request_wants_keep_alive(request)

    def test_http11_close_opt_out(self):
        request = Request(method="GET", target="/", version="HTTP/1.1")
        request.headers.set("Connection", "close")
        assert not request_wants_keep_alive(request)

    def test_close_beats_keep_alive(self):
        request = Request(method="GET", target="/")
        request.headers.add("Connection", "keep-alive")
        request.headers.add("Connection", "close")
        assert not request_wants_keep_alive(request)


class TestResponseSemantics:
    def test_http10_defaults_to_close(self):
        assert not response_allows_keep_alive(Response(status=200))

    def test_explicit_keep_alive(self):
        response = Response(status=200)
        response.headers.set("Connection", "keep-alive")
        assert response_allows_keep_alive(response)

    def test_http11_close(self):
        response = Response(status=200, version="HTTP/1.1")
        response.headers.set("Connection", "close")
        assert not response_allows_keep_alive(response)
