"""Replication groups with autonomous repair.

Covers the subsystem end to end at the unit level: configuration
validation, the LDG/policy drop-and-repair primitives (with primary
promotion), the :class:`ReplicationManager` state machine and repair
loop, two-choices replica serving, engine integration (holder death
means ``replica_drop`` + repair, never a revocation storm), durability
(journal replay idempotence and snapshot round-trip for the new decision
kinds), fsck invariant 7, the admin endpoint, and the cluster-sample
gauges.
"""

import pytest

from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.core.naming import REPLICAS_HEADER
from repro.errors import ConfigError, MigrationError
from repro.http.messages import Request
from repro.http.piggyback import LoadReport
from repro.server.admin import render_replication
from repro.server.engine import DCWSEngine
from repro.server.filestore import MemoryStore
from repro.server.fsck import check_engine
from repro.server.persistence import (
    apply_record,
    restore_engine,
    snapshot_engine,
)
from repro.server.replication import (
    STATE_CRITICAL,
    STATE_DEGRADED,
    STATE_HEALTHY,
    ReplicationManager,
)
from repro.server.stats import sample_cluster
from repro.server.wal import WriteAheadJournal, scan_journal

HOME = Location("home", 8001)
COOP = Location("coop", 8002)
COOP2 = Location("coop2", 8003)

SITE = {
    "/index.html": b'<html><a href="d.html">D</a><a href="e.html">E</a>'
                   b'</html>',
    "/d.html": b'<html><a href="e.html">E</a></html>',
    "/e.html": b"<html>leaf</html>",
}


def make_engine(location=HOME, peers=(COOP, COOP2), **config_kwargs):
    config_kwargs.setdefault("stats_interval", 1.0)
    config_kwargs.setdefault("migration_hit_threshold", 1.0)
    config_kwargs.setdefault("replication_k", 2)
    config_kwargs.setdefault("max_replicas", 2)
    config = ServerConfig(**config_kwargs)
    engine = DCWSEngine(location, config, MemoryStore(dict(SITE)),
                        entry_points=["/index.html"], peers=list(peers))
    engine.initialize(0.0)
    return engine


def migrated_engine(**config_kwargs):
    """A home with /d.html migrated to COOP and a group synced."""
    engine = make_engine(**config_kwargs)
    engine.policy.force_migrate("/d.html", COOP, now=0.5)
    return engine


def declare_dead(engine, victim, start=5.0):
    """Drive the pinger to declare *victim* dead (limit failed pings)."""
    for round_number in range(engine.config.ping_failure_limit):
        actions = engine.tick(start + round_number * 10)
        for action in actions:
            if action.kind == "ping" and action.peer == victim:
                engine.complete_action(action, None,
                                       start + round_number * 10 + 0.1)


# ======================================================================
# Configuration
# ======================================================================

class TestConfig:
    def test_defaults_disable_the_subsystem(self):
        config = ServerConfig()
        assert config.replication_k == 1
        assert config.max_replications_per_interval == 1
        engine = make_engine(replication_k=1)
        assert engine.replication is None

    def test_k_above_one_enables_the_subsystem(self):
        engine = make_engine()
        assert isinstance(engine.replication, ReplicationManager)

    @pytest.mark.parametrize("kwargs", [
        {"replication_k": 0},
        {"max_replications_per_interval": 0},
        {"replication_k": 2, "replication_sufficient": 3},
        {"replication_heat_threshold": -1.0},
        {"replication_repair_interval": -0.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            ServerConfig(**kwargs)

    def test_scaled_compresses_repair_interval(self):
        config = ServerConfig(replication_repair_interval=3.0)
        assert config.scaled(0.5).replication_repair_interval == 1.5

    def test_repair_interval_defaults_to_stats_interval(self):
        engine = make_engine(stats_interval=7.0)
        assert engine.replication.repair_interval == 7.0
        engine = make_engine(replication_repair_interval=2.5)
        assert engine.replication.repair_interval == 2.5


# ======================================================================
# LDG and policy primitives
# ======================================================================

class TestDropHolder:
    def test_replica_dropped_keeps_primary(self):
        engine = migrated_engine()
        engine.graph.add_replica("/d.html", COOP2)
        engine.graph.drop_holder("/d.html", COOP2)
        record = engine.graph.get("/d.html")
        assert record.location == COOP
        assert record.replicas == set()

    def test_primary_death_promotes_a_survivor(self):
        engine = migrated_engine()
        engine.graph.add_replica("/d.html", COOP2)
        engine.graph.drop_holder("/d.html", COOP)
        record = engine.graph.get("/d.html")
        assert record.location == COOP2
        assert record.replicas == set()

    def test_dropping_last_holder_refused(self):
        engine = migrated_engine()
        with pytest.raises(MigrationError):
            engine.graph.drop_holder("/d.html", COOP)

    def test_dropping_a_non_holder_refused(self):
        engine = migrated_engine()
        with pytest.raises(MigrationError):
            engine.graph.drop_holder("/d.html", COOP2)

    def test_drop_dirties_referrers(self):
        engine = migrated_engine()
        engine.graph.add_replica("/d.html", COOP2)
        engine.regenerate_dirty()
        dirtied = engine.graph.drop_holder("/d.html", COOP)
        assert "/index.html" in dirtied
        assert engine.graph.get("/index.html").dirty

    def test_policy_drop_updates_migration_record(self):
        engine = migrated_engine()
        engine.policy.repair_replica("/d.html", COOP2, now=1.0)
        decision = engine.policy.drop_holder("/d.html", COOP)
        assert decision is not None
        assert decision.kind == "replica_drop"
        assert engine.policy.migration_of("/d.html") == COOP2
        assert engine.policy.restored_replicas("/d.html") == {}

    def test_policy_drop_without_survivor_is_none(self):
        engine = migrated_engine()
        assert engine.policy.drop_holder("/d.html", COOP) is None

    def test_revoke_all_from_prefers_drop_over_revoke(self):
        engine = migrated_engine()
        engine.policy.force_migrate("/e.html", COOP, now=0.6)
        engine.policy.repair_replica("/d.html", COOP2, now=1.0)
        decisions = engine.policy.revoke_all_from(COOP)
        kinds = {d.name: d.kind for d in decisions}
        assert kinds == {"/d.html": "replica_drop", "/e.html": "revoke"}
        assert engine.graph.get("/d.html").location == COOP2
        assert engine.graph.get("/e.html").location == HOME


# ======================================================================
# ReplicationManager: groups, repair loop, and the state machine
# ======================================================================

class TestManager:
    def test_sync_creates_groups_for_migrated_documents(self):
        engine = migrated_engine()
        engine.replication.sync(1.0)
        assert "/d.html" in engine.replication.groups

    def test_sync_removes_groups_for_revoked_documents(self):
        engine = migrated_engine()
        engine.replication.sync(1.0)
        engine.policy.revoke("/d.html")
        engine.replication.sync(2.0)
        assert engine.replication.groups == {}

    def test_heat_threshold_gates_group_creation(self):
        engine = migrated_engine(replication_heat_threshold=5.0)
        engine.replication.sync(1.0)
        assert engine.replication.groups == {}
        for _ in range(5):
            engine.graph.record_hit("/d.html", 1.0)
        engine.replication.sync(2.0)
        assert "/d.html" in engine.replication.groups

    def test_repair_round_tops_up_to_k(self):
        engine = migrated_engine()
        decisions = engine.replication.repair_round(1.0)
        assert [d.kind for d in decisions] == ["repair"]
        record = engine.graph.get("/d.html")
        assert record.location == COOP
        assert record.replicas == {COOP2}
        group = engine.replication.groups["/d.html"]
        assert group.state == STATE_HEALTHY
        assert group.repairs == 1

    def test_repair_budget_bounds_each_round(self):
        engine = migrated_engine()
        engine.policy.force_migrate("/e.html", COOP, now=0.6)
        first = engine.replication.repair_round(1.0)
        assert len([d for d in first if d.kind == "repair"]) == 1
        second = engine.replication.repair_round(2.0)
        assert len([d for d in second if d.kind == "repair"]) == 1
        assert engine.replication.repair_round(3.0) == []

    def test_critical_groups_repair_first(self):
        engine = make_engine(max_replications_per_interval=1)
        engine.policy.force_migrate("/d.html", COOP, now=0.5)
        engine.policy.force_migrate("/e.html", COOP, now=0.5)
        engine.replication.sync(1.0)
        # /e.html degraded (has a live holder), /d.html critical (none).
        engine.replication.groups["/d.html"].state = STATE_CRITICAL
        engine.replication.groups["/e.html"].state = STATE_DEGRADED
        decisions = engine.replication.repair_round(1.0)
        repaired = [d.name for d in decisions if d.kind == "repair"]
        assert repaired == ["/d.html"]

    def test_dead_holder_dropped_then_replaced(self):
        alive = {str(COOP): True, str(COOP2): True}
        engine = migrated_engine()
        manager = ReplicationManager(
            engine.config, engine.graph, engine.glt, engine.policy,
            alive=lambda loc: alive.get(str(loc), True))
        manager.repair_round(1.0)     # tops up onto COOP2
        alive[str(COOP)] = False
        decisions = manager.repair_round(2.0)
        kinds = sorted(d.kind for d in decisions)
        assert kinds == ["replica_drop"]
        record = engine.graph.get("/d.html")
        assert record.location == COOP2
        assert COOP not in record.locations()
        assert manager.groups["/d.html"].state == STATE_DEGRADED

    def test_classify_thresholds(self):
        engine = make_engine(replication_k=3, max_replicas=3,
                             replication_sufficient=2)
        manager = engine.replication
        assert manager._classify([COOP, COOP2, HOME]) == STATE_HEALTHY
        assert manager._classify([COOP, COOP2]) == STATE_DEGRADED
        assert manager._classify([COOP]) == STATE_CRITICAL


class TestTwoChoices:
    def replicated(self):
        engine = migrated_engine()
        engine.replication.repair_round(1.0)
        return engine, engine.graph.get("/d.html")

    def test_pick_is_deterministic(self):
        engine, record = self.replicated()
        picks = {str(engine.replication.pick(record, salt="/index.html"))
                 for _ in range(10)}
        assert len(picks) == 1

    def test_pick_spreads_across_salts(self):
        engine, record = self.replicated()
        picks = {str(engine.replication.pick(record, salt=f"/ref{i}.html"))
                 for i in range(64)}
        assert picks == {str(COOP), str(COOP2)}

    def test_less_loaded_candidate_wins(self):
        engine, record = self.replicated()
        engine.glt.observe(LoadReport(str(COOP), 1000.0, 1.0))
        engine.glt.observe(LoadReport(str(COOP2), 1.0, 1.0))
        picks = [str(engine.replication.pick(record, salt=f"/r{i}"))
                 for i in range(64)]
        assert picks.count(str(COOP2)) == len(picks)
        assert engine.replication.counters.two_choices_alternates > 0

    def test_dead_holders_filtered(self):
        engine = migrated_engine()
        manager = ReplicationManager(
            engine.config, engine.graph, engine.glt, engine.policy,
            alive=lambda loc: loc != COOP)
        engine.policy.repair_replica("/d.html", COOP2, now=1.0)
        record = engine.graph.get("/d.html")
        picks = {str(manager.pick(record, salt=f"/r{i}"))
                 for i in range(16)}
        assert picks == {str(COOP2)}

    def test_all_dead_falls_back_to_every_holder(self):
        engine = migrated_engine()
        manager = ReplicationManager(
            engine.config, engine.graph, engine.glt, engine.policy,
            alive=lambda loc: False)
        record = engine.graph.get("/d.html")
        assert manager.pick(record, salt="/x") == COOP


# ======================================================================
# Engine integration: tick scheduling, holder death, replica redirects
# ======================================================================

class TestEngineIntegration:
    def test_tick_runs_repair_round(self):
        engine = migrated_engine()
        engine.tick(5.0)
        assert engine.stats.repairs == 1
        assert engine.graph.get("/d.html").replicas == {COOP2}

    def test_holder_death_is_drop_not_revocation(self):
        engine = migrated_engine(ping_failure_limit=2, pinger_interval=1.0)
        engine.tick(5.0)                       # proactive top-up to k=2
        declare_dead(engine, COOP, start=10.0)
        assert engine.stats.replica_drops == 1
        assert engine.stats.revocations == 0
        record = engine.graph.get("/d.html")
        assert record.location == COOP2
        assert engine.policy.migration_of("/d.html") == COOP2
        assert engine.replication.groups["/d.html"].state == STATE_DEGRADED

    def test_unreplicated_documents_still_revoke(self):
        engine = migrated_engine(ping_failure_limit=2, pinger_interval=1.0,
                                 replication_heat_threshold=1e9)
        declare_dead(engine, COOP, start=5.0)
        assert engine.stats.revocations == 1
        assert engine.graph.get("/d.html").location == HOME

    def test_redirect_carries_live_replica_set(self):
        engine = migrated_engine()
        engine.tick(5.0)
        reply = engine.handle_request(Request("GET", "/d.html"), 6.0)
        assert reply.response.status == 301
        replicas = reply.response.headers.get(REPLICAS_HEADER)
        assert replicas is not None
        assert set(replicas.split(",")) == {str(COOP), str(COOP2)}

    def test_single_holder_redirect_has_no_replica_header(self):
        engine = migrated_engine(replication_k=1)
        reply = engine.handle_request(Request("GET", "/d.html"), 1.0)
        assert reply.response.status == 301
        assert reply.response.headers.get(REPLICAS_HEADER) is None


# ======================================================================
# Durability: journal replay idempotence and snapshot round-trip
# ======================================================================

def replication_state(engine):
    """The durable facts the new decision kinds must round-trip."""
    return {
        record.name: (str(record.location),
                      tuple(sorted(str(r) for r in record.replicas)))
        for record in engine.graph.documents()}


class TestDurability:
    def run_workload(self, tmp_path):
        journal = WriteAheadJournal(str(tmp_path / "home.wal"),
                                    location=str(HOME), fsync_policy="off")
        engine = migrated_engine(ping_failure_limit=2, pinger_interval=1.0)
        engine.attach_journal(journal)
        engine.tick(5.0)                       # journals the repair
        declare_dead(engine, COOP, start=10.0)  # journals the replica_drop
        journal.close()
        return engine, str(tmp_path / "home.wal")

    def test_replay_matches_live_engine(self, tmp_path):
        live, journal_path = self.run_workload(tmp_path)
        records = scan_journal(journal_path).records
        assert {"repair", "replica_drop"} <= {r.kind for r in records}
        replayed = make_engine()
        for record in records:
            apply_record(replayed, record)
        assert replication_state(replayed) == replication_state(live)
        assert replayed.policy.migration_of("/d.html") == COOP2

    def test_replay_is_idempotent(self, tmp_path):
        __, journal_path = self.run_workload(tmp_path)
        records = scan_journal(journal_path).records
        once, twice = make_engine(), make_engine()
        for record in records:
            apply_record(once, record)
            apply_record(twice, record)
            apply_record(twice, record)
        assert replication_state(once) == replication_state(twice)

    def test_snapshot_round_trips_groups_and_replicas(self):
        engine = migrated_engine()
        engine.tick(5.0)
        snapshot = snapshot_engine(engine, 6.0)
        assert snapshot["replication"], "groups missing from snapshot"
        fresh = make_engine()
        restore_engine(fresh, snapshot, 7.0)
        assert replication_state(fresh) == replication_state(engine)
        assert fresh.replication.groups.keys() == \
            engine.replication.groups.keys()
        group = fresh.replication.groups["/d.html"]
        assert group.repairs == 1
        assert group.state == STATE_HEALTHY
        assert fresh.policy.restored_replicas("/d.html").keys() == {
            str(COOP2)}

    def test_disabled_subsystem_snapshot_is_empty(self):
        engine = migrated_engine(replication_k=1)
        assert snapshot_engine(engine, 1.0)["replication"] == []


# ======================================================================
# fsck invariant 7
# ======================================================================

class TestFsck:
    def test_replicated_engine_is_clean(self):
        engine = migrated_engine()
        engine.tick(5.0)
        engine.regenerate_dirty()
        assert check_engine(engine) == []

    def test_home_as_replica_flagged(self):
        engine = migrated_engine()
        engine.graph.get("/d.html").replicas.add(HOME)
        assert any("home" in v for v in
                   check_engine(engine, check_links=False))

    def test_primary_among_replicas_flagged(self):
        engine = migrated_engine()
        engine.graph.get("/d.html").replicas.add(COOP)
        assert any("primary" in v for v in
                   check_engine(engine, check_links=False))

    def test_group_for_unmigrated_document_flagged(self):
        engine = migrated_engine()
        engine.replication.sync(1.0)
        engine.policy.revoke("/d.html")
        # Simulate a missed sync: the group lingers after revocation.
        engine.replication.groups["/d.html"] = \
            engine.replication.groups.get("/d.html") or None
        engine.replication.restore([{"name": "/d.html", "target": 2}])
        assert any("not migrated" in v for v in
                   check_engine(engine, check_links=False))

    def test_holder_unknown_to_glt_flagged(self):
        engine = migrated_engine()
        engine.tick(5.0)
        engine.glt.remove(COOP2)
        assert any("GLT no longer knows" in v for v in
                   check_engine(engine, check_links=False))


# ======================================================================
# Admin endpoint and cluster-sample gauges
# ======================================================================

class TestObservability:
    def test_admin_disabled_message(self):
        engine = migrated_engine(replication_k=1)
        text = render_replication(engine)
        assert "disabled" in text

    def test_admin_renders_groups(self):
        engine = migrated_engine()
        engine.tick(5.0)
        text = render_replication(engine)
        assert "/d.html" in text
        assert "healthy" in text
        assert "repairs" in text

    def test_cluster_sample_gauges(self):
        engine = migrated_engine()
        engine.tick(5.0)
        engine.handle_request(Request("GET", "/d.html"), 6.0)
        sample = sample_cluster(6.0, [engine])
        assert sample.replication_groups == 1
        assert sample.replication_groups_below_target == 0
        assert sample.replication_repairs == 1
        assert sample.replication_copies == {"2": 1}
        assert sample.replication_two_choices_picks >= 1

    def test_disabled_engine_samples_zero(self):
        engine = migrated_engine(replication_k=1)
        sample = sample_cluster(1.0, [engine])
        assert sample.replication_groups == 0
        assert sample.replication_copies == {}
