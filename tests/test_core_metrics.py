"""Unit tests for sliding-window load metrics."""

import pytest

from repro.core.metrics import LoadMetricKind, ServerMetrics, WindowCounter
from repro.errors import ConfigError


class TestWindowCounter:
    def test_rate_within_window(self):
        counter = WindowCounter(window=10.0)
        for t in range(5):
            counter.record(float(t))
        assert counter.rate(4.0) == pytest.approx(0.5)

    def test_old_events_pruned(self):
        counter = WindowCounter(window=10.0)
        counter.record(0.0)
        counter.record(5.0)
        assert counter.rate(20.0) == 0.0

    def test_boundary_event_excluded(self):
        counter = WindowCounter(window=10.0)
        counter.record(0.0)
        # An event exactly one window old falls out.
        assert counter.rate(10.0) == 0.0

    def test_weighted_events(self):
        counter = WindowCounter(window=2.0)
        counter.record(0.0, weight=100.0)
        counter.record(1.0, weight=50.0)
        assert counter.rate(1.0) == pytest.approx(75.0)

    def test_lifetime_counters_never_pruned(self):
        counter = WindowCounter(window=1.0)
        counter.record(0.0, 3.0)
        counter.record(100.0, 7.0)
        assert counter.lifetime_total == 10.0
        assert counter.lifetime_count == 2

    def test_count_in_window(self):
        counter = WindowCounter(window=10.0)
        counter.record(0.0)
        counter.record(8.0)
        assert counter.count_in_window(9.0) == 2
        assert counter.count_in_window(15.0) == 1

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ConfigError):
            WindowCounter(0.0)

    def test_empty_counter_rate_zero(self):
        assert WindowCounter(5.0).rate(100.0) == 0.0


class TestServerMetrics:
    def test_cps_and_bps(self):
        metrics = ServerMetrics(window=10.0)
        for t in range(10):
            metrics.record_connection(float(t), bytes_sent=1000)
        now = 9.5
        assert metrics.cps(now) == pytest.approx(1.0)
        assert metrics.bps(now) == pytest.approx(1000.0)

    def test_load_metric_kind_selects_measure(self):
        metrics = ServerMetrics(window=10.0)
        metrics.record_connection(0.0, bytes_sent=5000)
        assert metrics.load_metric(1.0, LoadMetricKind.CPS) == \
            pytest.approx(0.1)
        assert metrics.load_metric(1.0, LoadMetricKind.BPS) == \
            pytest.approx(500.0)

    def test_drop_and_redirect_counters(self):
        metrics = ServerMetrics(window=10.0)
        metrics.record_drop(0.0)
        metrics.record_redirect(0.0)
        metrics.record_reconstruction(0.0)
        # Drops average over 4 windows (stable drop-pressure signal).
        assert metrics.drops.rate(1.0) == pytest.approx(1.0 / 40.0)
        assert metrics.redirects.rate(1.0) == pytest.approx(0.1)
        assert metrics.reconstructions.rate(1.0) == pytest.approx(0.1)
