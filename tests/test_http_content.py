"""Unit tests for serve-path content negotiation (repro.http.content):
validator derivation, conditional-request evaluation, gzip variants, and
single-range parsing."""

import pytest

from repro.http.content import (
    DCWS_EPOCH,
    RANGE_UNSATISFIABLE,
    accepts_gzip,
    compressible,
    content_range,
    etag_for,
    etag_matches,
    gunzip_bytes,
    gzip_bytes,
    http_date,
    last_modified_for,
    maybe_gzip,
    not_modified,
    parse_http_date,
    parse_range,
    version_timestamp,
)
from repro.http.headers import Headers


class TestValidators:
    def test_etag_is_strong_and_version_sensitive(self):
        tag = etag_for("/a.html", 3)
        assert tag.startswith('"') and tag.endswith('"')
        assert tag != etag_for("/a.html", 4)
        assert tag != etag_for("/b.html", 3)

    def test_etag_deterministic(self):
        assert etag_for("/a.html", 1) == etag_for("/a.html", 1)

    def test_last_modified_monotonic_in_version(self):
        t1 = parse_http_date(last_modified_for(1))
        t2 = parse_http_date(last_modified_for(2))
        assert t1 is not None and t2 is not None and t2 > t1

    def test_version_timestamp_numeric(self):
        assert version_timestamp(0) == DCWS_EPOCH
        assert version_timestamp("7") == DCWS_EPOCH + 7

    def test_version_timestamp_opaque_is_stable(self):
        assert version_timestamp("v-abc") == version_timestamp("v-abc")

    def test_http_date_round_trip(self):
        assert parse_http_date(http_date(DCWS_EPOCH)) == DCWS_EPOCH

    def test_parse_http_date_malformed(self):
        assert parse_http_date("not a date") is None
        assert parse_http_date("") is None


class TestEtagMatching:
    def test_exact_match(self):
        assert etag_matches('"abc-1"', '"abc-1"')

    def test_wildcard(self):
        assert etag_matches("*", '"anything"')

    def test_list_and_weak_prefix(self):
        assert etag_matches('"x", W/"abc-1", "y"', '"abc-1"')

    def test_mismatch(self):
        assert not etag_matches('"abc-1"', '"abc-2"')


class TestNotModified:
    ETAG = '"abc-1"'
    LM = http_date(DCWS_EPOCH + 1)

    def headers(self, **fields):
        headers = Headers()
        for name, value in fields.items():
            headers.set(name.replace("_", "-"), value)
        return headers

    def test_matching_etag(self):
        assert not_modified(self.headers(If_None_Match=self.ETAG),
                            self.ETAG, self.LM)

    def test_etag_precedence_over_ims(self):
        # RFC 7232 section 6: a non-matching INM must win even when IMS
        # would validate.
        headers = self.headers(If_None_Match='"other"',
                               If_Modified_Since=self.LM)
        assert not not_modified(headers, self.ETAG, self.LM)

    def test_ims_equal_date_validates(self):
        assert not_modified(self.headers(If_Modified_Since=self.LM),
                            self.ETAG, self.LM)

    def test_ims_older_date_does_not_validate(self):
        old = http_date(DCWS_EPOCH)
        assert not not_modified(self.headers(If_Modified_Since=old),
                                self.ETAG, self.LM)

    def test_ims_malformed_does_not_validate(self):
        assert not not_modified(self.headers(If_Modified_Since="garbage"),
                                self.ETAG, self.LM)

    def test_unconditional_request(self):
        assert not not_modified(Headers(), self.ETAG, self.LM)


class TestGzip:
    def test_round_trip_and_determinism(self):
        data = b"<html>" + b"hello world " * 100 + b"</html>"
        compressed = gzip_bytes(data)
        assert gunzip_bytes(compressed) == data
        assert gzip_bytes(data) == compressed

    def test_maybe_gzip_compressible_html(self):
        data = b"x" * 4096
        variant = maybe_gzip(data, "text/html")
        assert variant is not None and len(variant) < len(data)

    def test_maybe_gzip_skips_small_bodies(self):
        assert maybe_gzip(b"tiny", "text/html") is None

    def test_maybe_gzip_skips_images(self):
        assert maybe_gzip(b"GIF89a" + b"\x00" * 4096, "image/gif") is None

    def test_compressible_types(self):
        assert compressible("text/html; charset=utf-8")
        assert compressible("application/json")
        assert not compressible("image/png")
        assert not compressible("application/octet-stream")

    def test_accepts_gzip_variants(self):
        def accepts(value):
            return accepts_gzip(Headers([("Accept-Encoding", value)]))
        assert accepts("gzip")
        assert accepts("gzip, deflate")
        assert accepts("deflate, gzip;q=0.5")
        assert accepts("x-gzip")
        assert not accepts("gzip;q=0")
        assert not accepts("identity")
        assert not accepts_gzip(Headers())


class TestParseRange:
    def test_closed_range(self):
        assert parse_range("bytes=0-99", 1000) == (0, 99)

    def test_open_ended(self):
        assert parse_range("bytes=900-", 1000) == (900, 999)

    def test_suffix(self):
        assert parse_range("bytes=-100", 1000) == (900, 999)

    def test_suffix_larger_than_entity(self):
        assert parse_range("bytes=-5000", 1000) == (0, 999)

    def test_end_clamped_to_entity(self):
        assert parse_range("bytes=500-9999", 1000) == (500, 999)

    def test_start_past_end_of_entity_unsatisfiable(self):
        assert parse_range("bytes=1000-", 1000) is RANGE_UNSATISFIABLE

    def test_zero_suffix_unsatisfiable(self):
        assert parse_range("bytes=-0", 1000) is RANGE_UNSATISFIABLE

    @pytest.mark.parametrize("value", [
        "chars=0-5", "bytes=", "bytes=a-b", "bytes=5", "bytes=9-5",
        "bytes=0-5,10-15", "bytes=--5",
    ])
    def test_ignored_specs_mean_full_200(self, value):
        assert parse_range(value, 1000) is None

    def test_content_range_rendering(self):
        assert content_range((0, 99), 1000) == "bytes 0-99/1000"
