"""Integration-style tests for the simulated cluster."""

import pytest

from repro.core.config import ServerConfig
from repro.datasets.synthetic import build_synthetic_site
from repro.errors import SimulationError
from repro.sim.cluster import ClusterConfig, SimCluster


def quick_config(**kwargs):
    defaults = dict(
        servers=2, clients=8, duration=20.0, sample_interval=5.0, seed=3,
        server_config=ServerConfig().scaled(0.2),
    )
    defaults.update(kwargs)
    return ClusterConfig(**defaults)


def small_site(**kwargs):
    defaults = dict(pages=20, images=8, fanout=4, seed=5)
    defaults.update(kwargs)
    return build_synthetic_site(**defaults)


class TestConstruction:
    def test_rejects_zero_servers(self):
        with pytest.raises(Exception):
            SimCluster(small_site(), quick_config(servers=0))

    def test_rejects_more_sites_than_servers(self):
        sites = [small_site(seed=1), small_site(seed=2), small_site(seed=3)]
        with pytest.raises(SimulationError):
            SimCluster(sites, quick_config(servers=2))

    def test_entry_urls_point_at_homes(self):
        cluster = SimCluster(small_site(), quick_config())
        assert all(u.host == "server0" for u in cluster.entry_urls)

    def test_multi_site_homes(self):
        sites = [small_site(seed=1, name="one"), small_site(seed=2, name="two")]
        cluster = SimCluster(sites, quick_config(servers=3))
        hosts = {u.host for u in cluster.entry_urls}
        assert hosts == {"server0", "server1"}

    def test_keep_alive_knob_enables_persistent_cost_model(self):
        plain = SimCluster(small_site(), quick_config())
        persistent = SimCluster(small_site(), quick_config(keep_alive=True))
        assert not plain.config.costs.keep_alive
        assert persistent.config.costs.keep_alive
        assert persistent.config.costs.effective_connection_overhead() < \
            plain.config.costs.effective_connection_overhead()


class TestRun:
    def test_progress_and_conservation(self):
        cluster = SimCluster(small_site(), quick_config())
        result = cluster.run()
        assert result.client_stats.requests > 100
        assert result.events_processed > 0
        served = sum(info["served"] for info in result.per_server.values())
        dropped = sum(info["dropped"] for info in result.per_server.values())
        # Every client-visible outcome was either served or dropped; no
        # request is both (serves include server-to-server transfers).
        assert served >= result.client_stats.requests - \
            result.client_stats.drops - result.client_stats.errors
        assert dropped == result.drops

    def test_deterministic_given_seed(self):
        first = SimCluster(small_site(), quick_config()).run()
        second = SimCluster(small_site(), quick_config()).run()
        assert first.client_stats.requests == second.client_stats.requests
        assert first.series.cps_series() == second.series.cps_series()
        assert first.migrations == second.migrations

    def test_different_seeds_differ(self):
        first = SimCluster(small_site(), quick_config(seed=1)).run()
        second = SimCluster(small_site(), quick_config(seed=2)).run()
        assert first.client_stats.requests != second.client_stats.requests

    def test_samples_cover_duration(self):
        result = SimCluster(small_site(), quick_config()).run()
        times = result.series.times()
        assert times[0] == pytest.approx(5.0)
        assert times[-1] == pytest.approx(20.0)

    def test_ldg_invariants_hold_after_run(self):
        cluster = SimCluster(small_site(), quick_config())
        cluster.run()
        for server in cluster.servers.values():
            server.engine.graph.check_invariants()

    def test_migrations_occur_under_load(self):
        config = quick_config(servers=4, clients=32, duration=40.0)
        result = SimCluster(small_site(pages=40), config).run()
        assert result.migrations > 0
        hosted = sum(info["hosted"] for info in result.per_server.values())
        assert hosted > 0


class TestPrewarm:
    def test_prewarm_distributes_documents(self):
        cluster = SimCluster(small_site(), quick_config(prewarm=True))
        result = cluster.run()
        home = cluster.servers["server0:80"].engine
        assert len(home.graph.migrated_documents()) > 0
        hosted = sum(info["hosted"] for info in result.per_server.values())
        assert hosted == len(home.graph.migrated_documents())

    def test_prewarm_keeps_entry_points_home(self):
        cluster = SimCluster(small_site(), quick_config(prewarm=True))
        home = cluster.servers["server0:80"].engine
        cluster.run()
        for record in home.graph.entry_points():
            assert record.location == home.location

    def test_prewarm_leaves_no_dirty_documents(self):
        cluster = SimCluster(small_site(), quick_config(prewarm=True))
        home = cluster.servers["server0:80"].engine
        # Before the run starts, prewarm happens inside run(); emulate by
        # running for zero duration.
        config = quick_config(prewarm=True, duration=0.0)
        cluster = SimCluster(small_site(), config)
        cluster.run()
        home = cluster.servers["server0:80"].engine
        assert all(not r.dirty for r in home.graph.documents())

    def test_prewarm_beats_cold_start_early(self):
        site = small_site(pages=40)
        cold = SimCluster(site, quick_config(servers=4, clients=32)).run()
        warm = SimCluster(site, quick_config(servers=4, clients=32,
                                             prewarm=True)).run()
        assert warm.series.cps_series()[0] > cold.series.cps_series()[0]


class TestFailureInjection:
    def test_coop_crash_revokes_documents(self):
        site = small_site(pages=40)
        config = quick_config(servers=2, clients=16, duration=60.0,
                              prewarm=True)
        cluster = SimCluster(site, config)

        def crash_later(c):
            c.loop.schedule(20.0, lambda: c.crash_server(1))

        result = cluster.run(extra_setup=crash_later)
        home = cluster.servers["server0:80"].engine
        # After detection, documents migrated to the dead co-op come home.
        assert result.revocations > 0
        assert len(home.graph.migrated_documents()) == 0
        assert home.glt.peers() == []

    def test_home_crash_leaves_coop_copies_available(self):
        site = small_site(pages=40)
        config = quick_config(servers=2, clients=16, duration=40.0,
                              prewarm=True)
        cluster = SimCluster(site, config)
        coop = cluster.servers["server1:80"].engine

        def crash_home(c):
            c.loop.schedule(20.0, lambda: c.crash_server(0))

        cluster.run(extra_setup=crash_home)
        # The co-op must not discard its copies (section 4.5, case 4).
        assert any(h.fetched for h in coop.hosted.values())
