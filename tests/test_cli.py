"""Unit tests for the command-line interface."""

import socket
import threading
import time

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_serve_args(self):
        args = build_parser().parse_args(
            ["serve", "--root", "/tmp/site", "--port", "9090",
             "--peer", "other:80", "--entry", "/home.html"])
        assert args.root == "/tmp/site"
        assert args.port == 9090
        assert args.peer == ["other:80"]
        assert args.entry == ["/home.html"]

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.dataset == "lod"
        assert args.servers == 4
        assert not args.prewarm

    def test_dataset_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dataset", "--name", "unknown"])

    def test_bench_choices(self):
        args = build_parser().parse_args(["bench", "figure8"])
        assert args.experiment == "figure8"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "figure99"])


class TestDatasetCommand:
    def test_prints_statistics(self, capsys):
        assert main(["dataset", "--name", "lod"]) == 0
        out = capsys.readouterr().out
        assert "349 documents" in out
        assert "/index.html" in out

    def test_writes_to_disk(self, tmp_path, capsys):
        assert main(["dataset", "--name", "lod",
                     "--out", str(tmp_path)]) == 0
        from repro.server.filestore import DiskStore

        store = DiskStore(str(tmp_path))
        assert "/index.html" in store.names()
        assert len(store.names()) == 349


class TestSimulateCommand:
    def test_tiny_simulation(self, capsys):
        code = main(["simulate", "--dataset", "lod", "--servers", "2",
                     "--clients", "8", "--duration", "10",
                     "--sample-interval", "5", "--prewarm"])
        assert code == 0
        out = capsys.readouterr().out
        assert "steady CPS" in out
        assert "migrations" in out


class TestServeCommand:
    def test_serve_empty_root_fails(self, tmp_path, capsys):
        assert main(["serve", "--root", str(tmp_path)]) == 1

    def test_serve_and_fetch(self, tmp_path, capsys):
        from repro.server.filestore import DiskStore

        store = DiskStore(str(tmp_path))
        store.put("/index.html", b"<html>served from disk</html>")
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]

        exit_codes = []

        def run_server():
            exit_codes.append(main(["serve", "--root", str(tmp_path),
                                    "--port", str(port)]))

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        try:
            from repro.client.realclient import fetch_url
            from repro.http.urls import URL

            deadline = time.time() + 5.0
            outcome = None
            while time.time() < deadline:
                outcome = fetch_url(URL("127.0.0.1", port, "/index.html"),
                                    timeout=1.0)
                if outcome.status == 200:
                    break
                time.sleep(0.1)
            assert outcome is not None and outcome.status == 200
            status = fetch_url(URL("127.0.0.1", port, "/~dcws/status"),
                               timeout=1.0)
            assert status.status == 200
        finally:
            # The serve loop only exits on KeyboardInterrupt; the daemon
            # thread dies with the test process.
            pass


class TestWorkersFlag:
    def test_workers_parsed(self):
        args = build_parser().parse_args(
            ["serve", "--root", "/tmp/site", "--workers", "4"])
        assert args.workers == 4

    def test_workers_default_single_process(self):
        args = build_parser().parse_args(["serve", "--root", "/tmp/site"])
        assert args.workers == 1

    def test_workers_below_one_rejected(self, tmp_path, capsys):
        from repro.server.filestore import DiskStore

        DiskStore(str(tmp_path)).put("/index.html", b"<html>x</html>")
        assert main(["serve", "--root", str(tmp_path),
                     "--workers", "0"]) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_serve_multiprocess_and_fetch(self, tmp_path):
        """End-to-end: `repro serve --workers 2` in a subprocess."""
        import os
        import signal
        import subprocess
        import sys

        from repro.client.realclient import fetch_url
        from repro.http.urls import URL
        from repro.server.filestore import DiskStore
        from repro.server.multiproc import choose_mode

        if choose_mode() is None:
            pytest.skip("no multi-process accept mode on this platform")
        store = DiskStore(str(tmp_path))
        store.put("/index.html", b"<html>multiproc cli</html>")
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--root",
             str(tmp_path), "--port", str(port), "--workers", "2"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)
        try:
            deadline = time.time() + 15.0
            outcome = None
            while time.time() < deadline and proc.poll() is None:
                try:
                    outcome = fetch_url(URL("127.0.0.1", port,
                                            "/index.html"), timeout=1.0)
                    if outcome.status == 200:
                        break
                except OSError:
                    pass
                time.sleep(0.2)
            assert outcome is not None and outcome.status == 200
            workers_page = fetch_url(URL("127.0.0.1", port,
                                         "/~dcws/workers"), timeout=2.0)
            assert workers_page.status == 200
        finally:
            proc.send_signal(signal.SIGINT)
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)
