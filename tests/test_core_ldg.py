"""Unit tests for the Local Document Graph."""

import pytest

from repro.core.document import Location
from repro.core.ldg import LocalDocumentGraph
from repro.errors import DocumentNotFound, MigrationError

HOME = Location("home", 80)
COOP = Location("coop", 80)
COOP2 = Location("coop2", 80)


def small_graph() -> LocalDocumentGraph:
    """The Figure 1 topology: A->C, B->{D,E}, E->D."""
    graph = LocalDocumentGraph(HOME)
    graph.add_document("/A", 100, entry_point=True, link_to=["/C"])
    graph.add_document("/B", 100, link_to=["/D", "/E"])
    graph.add_document("/C", 100)
    graph.add_document("/D", 100)
    graph.add_document("/E", 100, link_to=["/D"])
    return graph


class TestConstruction:
    def test_transpose_maintained(self):
        graph = small_graph()
        assert graph.get("/D").link_from == {"/B", "/E"}
        assert graph.get("/C").link_from == {"/A"}
        graph.check_invariants()

    def test_forward_reference_resolved_when_target_added(self):
        graph = LocalDocumentGraph(HOME)
        graph.add_document("/a", 10, link_to=["/later"])
        graph.add_document("/later", 10)
        assert graph.get("/later").link_from == {"/a"}

    def test_duplicate_add_rejected(self):
        graph = small_graph()
        with pytest.raises(MigrationError):
            graph.add_document("/A", 1)

    def test_get_missing_raises(self):
        with pytest.raises(DocumentNotFound):
            small_graph().get("/missing")
        assert small_graph().find("/missing") is None

    def test_self_link_ignored(self):
        graph = LocalDocumentGraph(HOME)
        graph.add_document("/a", 10, link_to=["/a"])
        assert graph.get("/a").link_to == set()

    def test_len_and_names(self):
        graph = small_graph()
        assert len(graph) == 5
        assert graph.names() == ["/A", "/B", "/C", "/D", "/E"]

    def test_entry_points(self):
        assert [r.name for r in small_graph().entry_points()] == ["/A"]


class TestSetLinks:
    def test_replacing_links_fixes_transposes(self):
        graph = small_graph()
        graph.set_links("/B", ["/C"])
        assert graph.get("/D").link_from == {"/E"}
        assert graph.get("/C").link_from == {"/A", "/B"}
        graph.check_invariants()

    def test_remove_document_cleans_edges(self):
        graph = small_graph()
        graph.remove_document("/D")
        assert "/D" not in graph
        assert "/D" not in graph.get("/B").link_to
        assert "/D" not in graph.get("/E").link_to
        graph.check_invariants()


class TestMigration:
    def test_mark_migrated_sets_location_and_dirty(self):
        graph = small_graph()
        dirtied = graph.mark_migrated("/D", COOP)
        assert graph.get("/D").location == COOP
        assert sorted(dirtied) == ["/B", "/E"]
        assert graph.get("/B").dirty and graph.get("/E").dirty
        assert not graph.get("/A").dirty
        # The migrated document itself is dirtied (its links must be
        # absolutized) and its version bumped for co-op validation.
        assert graph.get("/D").dirty
        assert graph.get("/D").version == 1

    def test_entry_point_never_migrates(self):
        with pytest.raises(MigrationError):
            small_graph().mark_migrated("/A", COOP)

    def test_migrate_to_home_rejected(self):
        with pytest.raises(MigrationError):
            small_graph().mark_migrated("/D", HOME)

    def test_revocation_restores_home(self):
        graph = small_graph()
        graph.mark_migrated("/D", COOP)
        graph.get("/B").dirty = False
        dirtied = graph.mark_revoked("/D")
        assert graph.get("/D").location == HOME
        assert "/B" in dirtied and graph.get("/B").dirty

    def test_revoking_unmigrated_rejected(self):
        with pytest.raises(MigrationError):
            small_graph().mark_revoked("/D")

    def test_migrated_documents_listing(self):
        graph = small_graph()
        graph.mark_migrated("/D", COOP)
        assert [r.name for r in graph.migrated_documents()] == ["/D"]

    def test_remote_linkfrom_count(self):
        graph = small_graph()
        assert graph.remote_linkfrom_count("/D") == 0
        graph.mark_migrated("/E", COOP)
        assert graph.remote_linkfrom_count("/D") == 1

    def test_entry_ablation_allows_migration(self):
        graph = LocalDocumentGraph(HOME, enforce_entry_home=False)
        graph.add_document("/A", 10, entry_point=True)
        graph.mark_migrated("/A", COOP)  # must not raise
        graph.check_invariants()


class TestReplication:
    def test_first_replica_acts_as_migration(self):
        graph = small_graph()
        graph.add_replica("/D", COOP)
        assert graph.get("/D").location == COOP
        assert graph.get("/D").replicas == set()

    def test_second_replica_recorded(self):
        graph = small_graph()
        graph.add_replica("/D", COOP)
        graph.add_replica("/D", COOP2)
        record = graph.get("/D")
        assert record.locations() == {COOP, COOP2}

    def test_duplicate_replica_rejected(self):
        graph = small_graph()
        graph.add_replica("/D", COOP)
        with pytest.raises(MigrationError):
            graph.add_replica("/D", COOP)

    def test_revocation_clears_replicas(self):
        graph = small_graph()
        graph.add_replica("/D", COOP)
        graph.add_replica("/D", COOP2)
        graph.mark_revoked("/D")
        assert graph.get("/D").locations() == {HOME}


class TestHits:
    def test_hits_accumulate(self):
        graph = small_graph()
        graph.record_hit("/C")
        graph.record_hit("/C", 4)
        record = graph.get("/C")
        assert record.hits == 5
        assert record.window_hits == 5

    def test_reset_windows_keeps_lifetime(self):
        graph = small_graph()
        graph.record_hit("/C", 3)
        graph.reset_windows()
        assert graph.get("/C").hits == 3
        assert graph.get("/C").window_hits == 0
        assert graph.total_hits() == 3
