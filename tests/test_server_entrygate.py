"""Tests for the entry gate (section 3.1's cookie mechanism)."""

import pytest

from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.http.cookies import (
    build_cookie_header,
    build_set_cookie,
    parse_cookie_header,
    parse_set_cookie,
)
from repro.http.messages import Request
from repro.server.engine import DCWSEngine, PURPOSE_HEADER
from repro.server.entrygate import COOKIE_NAME, EntryGate
from repro.server.filestore import MemoryStore

HOME = Location("home", 8001)
COOP = Location("coop", 8002)

SITE = {
    "/index.html": b'<html><a href="d.html">D</a></html>',
    "/d.html": b"<html>internal</html>",
}


class TestCookieCodec:
    def test_parse_cookie_header(self):
        assert parse_cookie_header("a=1; b=2") == {"a": "1", "b": "2"}
        assert parse_cookie_header("") == {}
        assert parse_cookie_header("malformed; a=1") == {"a": "1"}

    def test_build_round_trip(self):
        cookies = {"z": "26", "a": "1"}
        assert parse_cookie_header(build_cookie_header(cookies)) == cookies

    def test_set_cookie_round_trip(self):
        header = build_set_cookie("dcws_session", "tok", max_age=900)
        assert parse_set_cookie(header) == ("dcws_session", "tok")
        assert "Max-Age=900" in header

    def test_parse_set_cookie_malformed(self):
        assert parse_set_cookie("no-equals-sign") is None


class TestEntryGate:
    def test_issue_validate(self):
        gate = EntryGate("secret", ttl=100.0)
        token = gate.issue(now=50.0)
        assert gate.validate(token, now=60.0)
        assert gate.validate(token, now=149.0)

    def test_expiry(self):
        gate = EntryGate("secret", ttl=100.0)
        token = gate.issue(now=0.0)
        assert not gate.validate(token, now=101.0)

    def test_forgery_rejected(self):
        gate = EntryGate("secret", ttl=100.0)
        assert not gate.validate("9999999999.deadbeefdeadbeefdead", 0.0)
        assert not gate.validate("garbage", 0.0)
        assert not gate.validate(None, 0.0)
        assert not gate.validate("", 0.0)

    def test_shared_secret_validates_across_servers(self):
        # Stateless: any server with the secret validates any token.
        issuer = EntryGate("cluster-secret", ttl=100.0)
        verifier = EntryGate("cluster-secret", ttl=100.0)
        assert verifier.validate(issuer.issue(0.0), 10.0)

    def test_different_secret_rejects(self):
        issuer = EntryGate("secret-a", ttl=100.0)
        verifier = EntryGate("secret-b", ttl=100.0)
        assert not verifier.validate(issuer.issue(0.0), 10.0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            EntryGate("", ttl=10.0)
        with pytest.raises(ValueError):
            EntryGate("s", ttl=0.0)


def gated_engine(location=HOME, site=None, peers=(COOP,)):
    config = ServerConfig(entry_gate_secret="cluster-secret",
                          entry_gate_ttl=900.0)
    engine = DCWSEngine(location, config,
                        MemoryStore(SITE if site is None else site),
                        entry_points=["/index.html"] if site is None else [],
                        peers=peers)
    engine.initialize(0.0)
    return engine


def get(engine, path, cookie=None, headers=None, now=1.0):
    request = Request("GET", path)
    if cookie:
        request.headers.set("Cookie", f"{COOKIE_NAME}={cookie}")
    for name, value in (headers or {}).items():
        request.headers.set(name, value)
    return engine.handle_request(request, now)


class TestGatedEngine:
    def test_entry_point_open_and_issues_cookie(self):
        engine = gated_engine()
        reply = get(engine, "/index.html")
        assert reply.response.status == 200
        set_cookie = reply.response.headers.get("Set-Cookie")
        assert set_cookie is not None
        name, token = parse_set_cookie(set_cookie)
        assert name == COOKIE_NAME
        assert engine.entry_gate.validate(token, 2.0)

    def test_deep_link_without_cookie_bounced(self):
        engine = gated_engine()
        reply = get(engine, "/d.html")
        assert reply.response.status == 302
        assert reply.response.headers.get("Location") == \
            "http://home:8001/index.html"

    def test_deep_link_with_cookie_served(self):
        engine = gated_engine()
        entry = get(engine, "/index.html")
        __, token = parse_set_cookie(entry.response.headers.get("Set-Cookie"))
        reply = get(engine, "/d.html", cookie=token)
        assert reply.response.status == 200

    def test_expired_cookie_bounced(self):
        engine = gated_engine()
        entry = get(engine, "/index.html", now=1.0)
        __, token = parse_set_cookie(entry.response.headers.get("Set-Cookie"))
        reply = get(engine, "/d.html", cookie=token, now=1e6)
        assert reply.response.status == 302

    def test_peer_transfers_bypass_gate(self):
        engine = gated_engine()
        engine.policy.force_migrate("/d.html", COOP, 0.5)
        reply = get(engine, "/d.html", headers={
            PURPOSE_HEADER: "migration-pull",
            "X-DCWS-Sender": "coop:8002"})
        assert reply.response.status == 200

    def test_coop_gates_migrated_documents_too(self):
        coop = gated_engine(location=COOP, site={}, peers=(HOME,))
        # No cookie: bounced toward the home site.
        result = get(coop, "/~migrate/home/8001/d.html")
        assert result.response.status == 302
        assert "home:8001" in result.response.headers.get("Location")
        # Valid cluster token: the pull proceeds.
        token = coop.entry_gate.issue(0.5)
        result = get(coop, "/~migrate/home/8001/d.html", cookie=token)
        from repro.server.engine import PullFromHome

        assert isinstance(result, PullFromHome)

    def test_gate_disabled_by_default(self):
        engine = DCWSEngine(HOME, ServerConfig(), MemoryStore(SITE),
                            entry_points=["/index.html"])
        engine.initialize(0.0)
        assert engine.entry_gate is None
        assert get(engine, "/d.html").response.status == 200
