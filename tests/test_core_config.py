"""Unit tests for ServerConfig (Table 1 parameters)."""

import pytest

from repro.core.config import PAPER_CONFIG, ServerConfig
from repro.core.metrics import LoadMetricKind
from repro.errors import ConfigError


class TestTable1Defaults:
    def test_paper_values(self):
        config = ServerConfig()
        assert config.front_end_threads == 1
        assert config.pinger_threads == 1
        assert config.worker_threads == 12
        assert config.socket_queue_length == 100
        assert config.stats_interval == 10.0
        assert config.pinger_interval == 20.0
        assert config.validation_interval == 120.0
        assert config.home_remigration_interval == 300.0
        assert config.coop_migration_spacing == 60.0

    def test_paper_config_constant(self):
        assert PAPER_CONFIG == ServerConfig()

    def test_default_metric_is_cps(self):
        # Section 5.3: CPS chosen as balancing metric for small transfers.
        assert ServerConfig().load_metric is LoadMetricKind.CPS

    def test_prototype_single_location_rule(self):
        # Footnote 1: one co-op per document in the prototype.
        assert ServerConfig().max_replicas == 1


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("worker_threads", 0),
        ("socket_queue_length", -1),
        ("stats_interval", 0.0),
        ("pinger_interval", -5.0),
        ("max_replicas", 0),
        ("workers", 0),
        ("workers", -2),
        ("lock_stripes", 0),
        ("sendfile_min_bytes", 0),
    ])
    def test_nonpositive_rejected(self, field, value):
        with pytest.raises(ConfigError):
            ServerConfig(**{field: value})

    def test_threshold_reduction_domain(self):
        with pytest.raises(ConfigError):
            ServerConfig(threshold_reduction_factor=1.0)
        with pytest.raises(ConfigError):
            ServerConfig(threshold_reduction_factor=0.0)

    def test_imbalance_tolerance_domain(self):
        with pytest.raises(ConfigError):
            ServerConfig(imbalance_tolerance=0.9)

    def test_selection_policy_domain(self):
        with pytest.raises(ConfigError):
            ServerConfig(selection_policy="magic")
        ServerConfig(selection_policy="hottest")
        ServerConfig(selection_policy="random")


class TestScaled:
    def test_intervals_scale_together(self):
        scaled = ServerConfig().scaled(0.1)
        assert scaled.stats_interval == pytest.approx(1.0)
        assert scaled.pinger_interval == pytest.approx(2.0)
        assert scaled.validation_interval == pytest.approx(12.0)
        assert scaled.home_remigration_interval == pytest.approx(30.0)
        assert scaled.coop_migration_spacing == pytest.approx(6.0)

    def test_ratios_preserved(self):
        base = ServerConfig()
        scaled = base.scaled(0.25)
        assert scaled.pinger_interval / scaled.stats_interval == \
            pytest.approx(base.pinger_interval / base.stats_interval)

    def test_counts_unchanged(self):
        scaled = ServerConfig().scaled(0.1)
        assert scaled.worker_threads == 12
        assert scaled.socket_queue_length == 100

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ConfigError):
            ServerConfig().scaled(0.0)

    def test_as_table_contains_every_field(self):
        table = ServerConfig().as_table()
        assert table["worker_threads"] == 12
        assert "validation_interval" in table
        assert len(table) >= 15
