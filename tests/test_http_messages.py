"""Unit tests for HTTP request/response messages."""

import pytest

from repro.errors import HTTPError
from repro.http.messages import (
    Request,
    Response,
    error_response,
    parse_request,
    parse_response,
    redirect_response,
)
from repro.http.status import StatusCode


class TestRequest:
    def test_round_trip(self):
        request = Request(method="GET", target="/a/b.html?q=1")
        request.headers.set("Host", "example")
        parsed = parse_request(request.serialize())
        assert parsed.method == "GET"
        assert parsed.target == "/a/b.html?q=1"
        assert parsed.headers.get("host") == "example"

    def test_path_strips_query(self):
        assert Request("GET", "/a?x=1").path == "/a"

    def test_body_gets_content_length(self):
        request = Request(method="POST", target="/x", body=b"abc")
        wire = request.serialize()
        assert b"Content-Length: 3" in wire
        assert parse_request(wire).body == b"abc"

    def test_rejects_unknown_method(self):
        with pytest.raises(HTTPError):
            Request(method="BREW", target="/x")

    def test_rejects_absolute_target(self):
        with pytest.raises(HTTPError):
            Request(method="GET", target="http://h/x")

    def test_rejects_unknown_version(self):
        with pytest.raises(HTTPError):
            Request(method="GET", target="/", version="HTTP/3.0")

    def test_parse_rejects_malformed_request_line(self):
        with pytest.raises(HTTPError):
            parse_request(b"GET /\r\n\r\n")

    def test_parse_requires_blank_line(self):
        with pytest.raises(HTTPError):
            parse_request(b"GET / HTTP/1.0\r\nHost: h\r\n")


class TestResponse:
    def test_round_trip(self):
        response = Response(status=200, body=b"hello")
        response.headers.set("Content-Type", "text/plain")
        parsed = parse_response(response.serialize())
        assert parsed.status == 200
        assert parsed.body == b"hello"
        assert parsed.reason == "OK"
        assert parsed.ok

    def test_content_length_always_set(self):
        assert b"Content-Length: 0" in Response(status=204).serialize()

    def test_body_truncated_to_content_length(self):
        wire = b"HTTP/1.0 200 OK\r\nContent-Length: 2\r\n\r\nabcdef"
        assert parse_response(wire).body == b"ab"

    def test_parse_rejects_non_numeric_status(self):
        with pytest.raises(HTTPError):
            parse_response(b"HTTP/1.0 abc OK\r\n\r\n")

    def test_parse_without_content_length_keeps_body(self):
        wire = b"HTTP/1.0 200 OK\r\nX: 1\r\n\r\npayload"
        assert parse_response(wire).body == b"payload"


class TestCannedResponses:
    def test_redirect(self):
        response = redirect_response("http://coop/~migrate/h/80/d.html")
        assert response.status == StatusCode.MOVED_PERMANENTLY
        assert response.headers.get("Location") == \
            "http://coop/~migrate/h/80/d.html"
        assert b"coop" in response.body

    def test_error_contains_reason(self):
        response = error_response(StatusCode.SERVICE_UNAVAILABLE, "overload")
        assert response.status == 503
        assert b"Service Unavailable" in response.body
        assert b"overload" in response.body
        assert not response.ok
