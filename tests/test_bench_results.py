"""Unit tests for the results-report compiler."""

import os

from repro.bench.results import (
    REPORT_ORDER,
    collect_results,
    compile_report,
    write_report,
)


def seed_results(tmp_path, names):
    directory = tmp_path / "results"
    directory.mkdir()
    for name in names:
        (directory / f"{name}.txt").write_text(f"content of {name}\n")
    return str(directory)


class TestCollect:
    def test_reads_all_txt_files(self, tmp_path):
        directory = seed_results(tmp_path, ["figure6", "table1"])
        collected = collect_results(directory)
        assert collected == {"figure6": "content of figure6",
                             "table1": "content of table1"}

    def test_missing_directory_is_empty(self, tmp_path):
        assert collect_results(str(tmp_path / "nope")) == {}

    def test_non_txt_ignored(self, tmp_path):
        directory = seed_results(tmp_path, ["figure6"])
        (tmp_path / "results" / "junk.json").write_text("{}")
        assert set(collect_results(directory)) == {"figure6"}


class TestCompile:
    def test_paper_order_respected(self, tmp_path):
        directory = seed_results(
            tmp_path, ["ablation_baselines", "figure6", "table1"])
        report = compile_report(directory)
        assert report.index("content of table1") < \
            report.index("content of figure6") < \
            report.index("content of ablation_baselines")

    def test_unknown_results_appended(self, tmp_path):
        directory = seed_results(tmp_path, ["zzz_custom", "table1"])
        report = compile_report(directory)
        assert "content of zzz_custom" in report
        assert report.index("content of table1") < \
            report.index("content of zzz_custom")

    def test_empty_directory_message(self, tmp_path):
        directory = str(tmp_path)
        assert "no results found" in compile_report(directory)

    def test_count_reported(self, tmp_path):
        directory = seed_results(tmp_path, ["table1", "figure6"])
        assert "(2 experiments)" in compile_report(directory)


class TestWrite:
    def test_writes_file(self, tmp_path):
        directory = seed_results(tmp_path, ["table1"])
        output = str(tmp_path / "RESULTS.txt")
        text = write_report(directory, output)
        assert os.path.exists(output)
        assert open(output).read().strip() == text.strip()


class TestRealResults:
    def test_compiles_repository_results_if_present(self):
        directory = os.path.join(os.path.dirname(__file__), "..",
                                 "benchmarks", "results")
        report = compile_report(directory)
        # Either results exist (they do after a bench run) or the
        # message is shown; both are valid outcomes for this repo state.
        assert "DCWS reproduction" in report

    def test_order_constant_covers_every_bench(self):
        bench_dir = os.path.join(os.path.dirname(__file__), "..",
                                 "benchmarks")
        modules = {f[5:-3] for f in os.listdir(bench_dir)
                   if f.startswith("test_") and f.endswith(".py")}
        # Every ordered name corresponds to some bench module's artefact.
        for name in REPORT_ORDER:
            assert any(name.replace("ablation_", "") in module or
                       name in module
                       for module in modules), name
