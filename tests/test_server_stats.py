"""Unit tests for cluster sampling and time series."""

import pytest

from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.http.messages import Request
from repro.server.engine import DCWSEngine
from repro.server.filestore import MemoryStore
from repro.server.stats import (
    ClusterSample,
    TimeSeries,
    growth_profile,
    sample_cluster,
)


def engine_with_traffic(host, hits, now=1.0):
    engine = DCWSEngine(Location(host, 80), ServerConfig(stats_interval=10.0),
                        MemoryStore({"/a.html": b"<html>x</html>"}))
    engine.initialize(0.0)
    for index in range(hits):
        engine.handle_request(Request("GET", "/a.html"),
                              now + index * 0.001)
    return engine


class TestSampleCluster:
    def test_aggregates_over_engines(self):
        engines = [engine_with_traffic("a", 10), engine_with_traffic("b", 30)]
        sample = sample_cluster(1.5, engines)
        assert sample.cps == pytest.approx(4.0)  # 40 hits / 10 s window
        assert sample.bps > 0
        assert set(sample.per_server_cps) == {"a:80", "b:80"}

    def test_imbalance_metric(self):
        engines = [engine_with_traffic("a", 10), engine_with_traffic("b", 30)]
        sample = sample_cluster(1.5, engines)
        assert sample.imbalance == pytest.approx(1.5)  # 3 / mean(1,3)

    def test_imbalance_of_empty_sample(self):
        assert ClusterSample(0.0, 0.0, 0.0, 0.0).imbalance == 1.0

    def test_idle_cluster(self):
        engine = engine_with_traffic("a", 0)
        sample = sample_cluster(100.0, [engine])
        assert sample.cps == 0.0
        assert sample.imbalance == 1.0


class TestTimeSeries:
    def make_series(self, values):
        series = TimeSeries()
        for index, value in enumerate(values):
            series.add(ClusterSample(time=float(index), cps=value,
                                     bps=value * 1000, drops_per_second=0.0))
        return series

    def test_peaks(self):
        series = self.make_series([1.0, 5.0, 3.0])
        assert series.peak_cps() == 5.0
        assert series.peak_bps() == 5000.0

    def test_means(self):
        series = self.make_series([2.0, 4.0])
        assert series.mean_cps() == 3.0
        assert series.mean_bps() == 3000.0

    def test_empty_series(self):
        series = TimeSeries()
        assert series.peak_cps() == 0.0
        assert series.mean_cps() == 0.0
        assert len(series.steady_state()) == 0

    def test_steady_state_takes_tail(self):
        series = self.make_series([1.0, 1.0, 10.0, 10.0])
        steady = series.steady_state(fraction=0.5)
        assert steady.mean_cps() == 10.0

    def test_out_of_order_rejected(self):
        series = self.make_series([1.0, 2.0])
        with pytest.raises(ValueError):
            series.add(ClusterSample(time=0.5, cps=0, bps=0,
                                     drops_per_second=0))

    def test_accessors(self):
        series = self.make_series([1.0, 2.0])
        assert series.times() == [0.0, 1.0]
        assert series.cps_series() == [1.0, 2.0]
        assert series.bps_series() == [1000.0, 2000.0]


class TestGrowthProfile:
    def test_first_differences(self):
        assert growth_profile([1.0, 2.0, 4.0, 8.0]) == [1.0, 2.0, 4.0]

    def test_short_series(self):
        assert growth_profile([5.0]) == []
        assert growth_profile([]) == []
