"""Property tests: the ~migrate naming convention is a bijection."""

from hypothesis import given, settings, strategies as st

from repro.core.document import Location
from repro.core.naming import (
    decode_migrated_path,
    encode_migrated_path,
    is_migrated_path,
    migrated_url,
)
from repro.http.urls import parse_url

_host = st.text(alphabet="abcdefghij.-0123456789", min_size=1,
                max_size=20).filter(
    lambda h: not h.startswith((".", "-")))
_port = st.integers(min_value=1, max_value=65535)
_segment = st.text(alphabet="abcdefghij0123456789_.-", min_size=1,
                   max_size=10).filter(
    lambda s: s not in (".", "..") and s != "~migrate")
_path = st.lists(_segment, min_size=1, max_size=6).map(
    lambda parts: "/" + "/".join(parts))


@given(_host, _port, _path)
@settings(max_examples=300)
def test_encode_decode_round_trip(host, port, path):
    home = Location(host, port)
    home_out, path_out = decode_migrated_path(encode_migrated_path(home, path))
    assert home_out == home
    assert path_out == path


@given(_host, _port, _path)
def test_encoded_form_is_recognizable(host, port, path):
    encoded = encode_migrated_path(Location(host, port), path)
    assert is_migrated_path(encoded)
    assert not is_migrated_path(path)


@given(_host, _port, _host, _port, _path)
@settings(max_examples=200)
def test_migrated_url_parses_back(coop_host, coop_port, home_host,
                                  home_port, path):
    coop = Location(coop_host, coop_port)
    home = Location(home_host, home_port)
    url = migrated_url(coop, home, path)
    parsed = parse_url(str(url))
    assert parsed.host == coop_host
    assert parsed.port == coop_port
    decoded_home, decoded_path = decode_migrated_path(parsed.path)
    assert decoded_home == home
    assert decoded_path == path
