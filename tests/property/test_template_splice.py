"""Property tests: link-template splice == full parse-tree rewrite.

The splice fast path (:mod:`repro.html.template`) must be byte-identical
to the tokenize -> parse -> rewrite_links -> serialize pipeline it
replaces, on any document and any rewrite mapping, across successive
regeneration rounds.
"""

from hypothesis import given, settings, strategies as st

from repro.html.parser import parse_html
from repro.html.rewriter import rewrite_html
from repro.html.serializer import escape_attribute, serialize_html
from repro.html.template import build_link_template

# --- generators (mirroring tests/property/test_html_roundtrip.py) ------

_name = st.text(alphabet="abcdefghij", min_size=1, max_size=8)
_href = st.builds(lambda s, ext: f"/{s}.{ext}",
                  _name, st.sampled_from(["html", "gif", "jpg"]))
_text = st.text(alphabet="abc xyz,.!?", max_size=30)


@st.composite
def html_documents(draw):
    """Well-formed-ish documents with a known set of references."""
    pieces = []
    for __ in range(draw(st.integers(0, 8))):
        kind = draw(st.sampled_from(
            ["a", "img", "frame", "body", "text", "b", "fragment", "entity"]))
        if kind == "a":
            pieces.append(f'<a href="{draw(_href)}">{draw(_text)}</a>')
        elif kind == "img":
            pieces.append(f'<img src="{draw(_href)}">')
        elif kind == "frame":
            pieces.append(f'<frame src="{draw(_href)}">')
        elif kind == "body":
            pieces.append(f'<body background="{draw(_href)}">')
        elif kind == "b":
            pieces.append(f"<b>{draw(_text)}</b>")
        elif kind == "fragment":
            pieces.append(f'<a href="#{draw(_name)}">{draw(_text)}</a>')
        elif kind == "entity":
            pieces.append(f'<a href="{draw(_href)}?a=1&amp;b=2">x</a>')
        else:
            pieces.append(draw(_text))
    return "".join(pieces)


@st.composite
def rewrite_mappings(draw, values):
    """A dict rewriting a subset of *values* to migrated-looking URLs."""
    mapping = {}
    for value in values:
        if draw(st.booleans()):
            mapping[value] = draw(st.one_of(
                st.just(f"http://coop:8081/~migrate/home/8080{value}"),
                _href,
                st.just(value)))  # identity: must be treated as unchanged
    return mapping


# --- properties --------------------------------------------------------

@given(html_documents(), st.data())
@settings(max_examples=150)
def test_splice_matches_full_rewrite(source, data):
    template = build_link_template(parse_html(source))
    values = sorted({span.value.strip() for span in template.spans})
    mapping = data.draw(rewrite_mappings(values))
    rewrite = lambda v: mapping.get(v)
    output, __ = template.splice(rewrite)
    assert output == rewrite_html(source, rewrite)


@given(html_documents(), st.data())
@settings(max_examples=75)
def test_second_round_splice_matches_full_rewrite(source, data):
    """The template returned by one splice drives the next one correctly."""
    template = build_link_template(parse_html(source))
    values = sorted({span.value.strip() for span in template.spans})
    first = data.draw(rewrite_mappings(values))
    out1, template = template.splice(lambda v: first.get(v))

    values2 = sorted({span.value.strip() for span in template.spans})
    second = data.draw(rewrite_mappings(values2))
    out2, template = template.splice(lambda v: second.get(v))
    assert out2 == rewrite_html(out1, lambda v: second.get(v))
    # Span offsets always address their recorded values (in escaped form:
    # ``value`` is the decoded attribute value handed to the rewrite fn).
    for span in template.spans:
        assert template.source[span.start:span.end] == \
            escape_attribute(span.value)


@given(html_documents())
@settings(max_examples=100)
def test_template_source_is_canonical_form(source):
    template = build_link_template(parse_html(source))
    assert template.source == serialize_html(parse_html(source))


@given(st.text(max_size=200))
@settings(max_examples=150)
def test_template_build_never_crashes_on_arbitrary_input(garbage):
    template = build_link_template(parse_html(garbage))
    output, __ = template.splice(lambda v: None)
    assert output == template.source
