"""Property tests: Algorithm 1's selection guarantees."""

from hypothesis import given, settings, strategies as st

from repro.core.document import Location
from repro.core.ldg import LocalDocumentGraph
from repro.core.selection import (
    eligible_candidates,
    select_documents_for_migration,
)

HOME = Location("home", 80)


@st.composite
def graphs(draw):
    """Random small LDGs with hits and some entry points."""
    count = draw(st.integers(2, 12))
    graph = LocalDocumentGraph(HOME)
    names = [f"/d{i}.html" for i in range(count)]
    entry_flags = draw(st.lists(st.booleans(), min_size=count,
                                max_size=count))
    for name, is_entry in zip(names, entry_flags):
        graph.add_document(name, size=100, entry_point=is_entry)
    for name in names:
        targets = draw(st.lists(st.sampled_from(names), max_size=4))
        graph.set_links(name, targets)
    for name in names:
        graph.record_hit(name, draw(st.integers(0, 100)))
    return graph


@given(graphs(), st.floats(1.0, 50.0))
@settings(max_examples=150, deadline=None)
def test_never_selects_entry_points(graph, threshold):
    for record in select_documents_for_migration(graph, threshold):
        assert not record.entry_point


@given(graphs(), st.floats(1.0, 50.0))
@settings(max_examples=150, deadline=None)
def test_never_selects_zero_hit_documents(graph, threshold):
    for record in select_documents_for_migration(graph, threshold):
        assert record.window_hits > 0


@given(graphs(), st.floats(1.0, 50.0))
@settings(max_examples=100, deadline=None)
def test_selection_is_deterministic(graph, threshold):
    first = [r.name for r in select_documents_for_migration(graph, threshold)]
    second = [r.name for r in select_documents_for_migration(graph, threshold)]
    assert first == second


@given(graphs(), st.floats(1.0, 50.0))
@settings(max_examples=100, deadline=None)
def test_selected_minimizes_remote_linkfrom(graph, threshold):
    candidates = eligible_candidates(graph, threshold)
    chosen = select_documents_for_migration(graph, threshold)
    if not chosen:
        return
    minimum = min(graph.remote_linkfrom_count(r.name) for r in candidates)
    assert graph.remote_linkfrom_count(chosen[0].name) == minimum


@given(graphs(), st.floats(1.0, 50.0), st.integers(1, 5))
@settings(max_examples=100, deadline=None)
def test_multi_selection_distinct_and_bounded(graph, threshold, count):
    chosen = select_documents_for_migration(graph, threshold, count=count)
    names = [r.name for r in chosen]
    assert len(names) == len(set(names))
    assert len(names) <= count


@given(graphs())
@settings(max_examples=100, deadline=None)
def test_nonempty_whenever_a_hot_noneentry_document_exists(graph):
    has_candidate = any(r.window_hits > 0 and not r.entry_point
                        and r.location == HOME
                        for r in graph.documents())
    chosen = select_documents_for_migration(graph, threshold=10.0)
    assert bool(chosen) == has_candidate
