"""Property tests: entry-gate token algebra and forgery resistance."""

from hypothesis import given, settings, strategies as st

from repro.server.entrygate import EntryGate

_secret = st.text(min_size=1, max_size=32)
_time = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)
_ttl = st.floats(min_value=1.0, max_value=1e6, allow_nan=False)


@given(_secret, _time, _ttl)
@settings(max_examples=200)
def test_fresh_token_always_validates(secret, now, ttl):
    gate = EntryGate(secret, ttl=ttl)
    assert gate.validate(gate.issue(now), now)


@given(_secret, _time, _ttl, st.floats(min_value=0.0, max_value=1e6,
                                       allow_nan=False))
@settings(max_examples=200)
def test_validity_window_is_exactly_ttl(secret, now, ttl, delay):
    gate = EntryGate(secret, ttl=ttl)
    token = gate.issue(now)
    later = now + delay
    expiry = int(now + ttl)
    assert gate.validate(token, later) == (later <= expiry)


@given(_secret, _secret, _time, _ttl)
@settings(max_examples=200)
def test_cross_secret_rejection(secret_a, secret_b, now, ttl):
    if secret_a == secret_b:
        return
    issuer = EntryGate(secret_a, ttl=ttl)
    verifier = EntryGate(secret_b, ttl=ttl)
    assert not verifier.validate(issuer.issue(now), now)


@given(_secret, _time, _ttl, st.integers(0, 30),
       st.characters(min_codepoint=33, max_codepoint=126))
@settings(max_examples=200)
def test_tampered_token_rejected(secret, now, ttl, position, replacement):
    gate = EntryGate(secret, ttl=ttl)
    token = gate.issue(now)
    index = position % len(token)
    if token[index] == replacement:
        return
    tampered = token[:index] + replacement + token[index + 1:]
    assert not gate.validate(tampered, now)


@given(_secret, _time, _ttl)
def test_tokens_are_deterministic_within_a_second(secret, now, ttl):
    gate = EntryGate(secret, ttl=ttl)
    assert gate.issue(now) == gate.issue(now)
