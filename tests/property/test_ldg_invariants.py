"""Property tests: the LDG's transpose/dirty/entry invariants survive any
sequence of graph operations (stateful hypothesis test)."""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core.document import Location
from repro.core.ldg import LocalDocumentGraph
from repro.errors import MigrationError

HOME = Location("home", 80)
COOPS = [Location("coop1", 80), Location("coop2", 80)]

_doc_index = st.integers(0, 9)
_targets = st.lists(_doc_index, max_size=4)


class LDGMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.graph = LocalDocumentGraph(HOME)
        self.names = []

    def _name(self, index):
        return f"/doc{index}.html"

    @rule(index=_doc_index, link_targets=_targets,
          entry=st.booleans())
    def add_document(self, index, link_targets, entry):
        name = self._name(index)
        if name in self.graph:
            return
        self.graph.add_document(
            name, size=100, entry_point=entry,
            link_to=[self._name(t) for t in link_targets])
        self.names.append(name)

    @rule(index=_doc_index, link_targets=_targets)
    def set_links(self, index, link_targets):
        name = self._name(index)
        if name not in self.graph:
            return
        self.graph.set_links(name, [self._name(t) for t in link_targets])

    @rule(index=_doc_index, coop=st.sampled_from(COOPS))
    def migrate(self, index, coop):
        name = self._name(index)
        if name not in self.graph:
            return
        record = self.graph.get(name)
        if record.entry_point or record.location != HOME:
            return
        self.graph.mark_migrated(name, coop)

    @rule(index=_doc_index)
    def revoke(self, index):
        name = self._name(index)
        if name not in self.graph:
            return
        try:
            self.graph.mark_revoked(name)
        except MigrationError:
            pass  # wasn't migrated; fine

    @rule(index=_doc_index)
    def remove(self, index):
        name = self._name(index)
        if name not in self.graph:
            return
        self.graph.remove_document(name)
        self.names.remove(name)

    @rule(index=_doc_index, count=st.integers(1, 5))
    def hit(self, index, count):
        name = self._name(index)
        if name in self.graph:
            self.graph.record_hit(name, count)

    @rule()
    def reset_windows(self):
        self.graph.reset_windows()

    @invariant()
    def invariants_hold(self):
        if not hasattr(self, "graph"):
            return
        self.graph.check_invariants()

    @invariant()
    def window_never_exceeds_lifetime(self):
        if not hasattr(self, "graph"):
            return
        for record in self.graph.documents():
            assert record.window_hits <= record.hits


LDGMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None)
TestLDGMachine = LDGMachine.TestCase
