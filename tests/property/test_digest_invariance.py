"""Property tests: the content digest is an invariant of the entity.

The integrity digest (:func:`repro.http.content.body_digest`) names the
*identity* body of one (document, version).  Whatever route produced the
bytes — a template splice on the home, the equivalent full parse-tree
rewrite, a gzip round-trip over the wire — the digest must come out the
same, or honest copies would quarantine each other.
"""

from hypothesis import given, settings, strategies as st

from repro.html.parser import parse_html
from repro.html.rewriter import rewrite_html
from repro.html.template import build_link_template
from repro.http.content import (body_digest, digest_matches, gunzip_bytes,
                                gzip_bytes)

from tests.property.test_template_splice import (html_documents,
                                                 rewrite_mappings)


@given(st.binary(max_size=4096))
@settings(max_examples=150)
def test_gzip_round_trip_preserves_digest(payload):
    """Compression is transport encoding: the identity digest the server
    stamps next to a gzip body must verify after the client inflates."""
    digest = body_digest(payload)
    assert digest_matches(gunzip_bytes(gzip_bytes(payload)), digest)
    assert digest.startswith("sha256:")


@given(st.binary(min_size=1, max_size=4096))
@settings(max_examples=100)
def test_digest_rejects_any_single_byte_flip(data):
    """The seeded ``corrupt`` fault flips one byte; the digest must never
    miss it, wherever the flip lands."""
    digest = body_digest(data)
    index = len(data) // 2
    flipped = data[:index] + bytes([data[index] ^ 0xFF]) + data[index + 1:]
    assert not digest_matches(flipped, digest)


@given(html_documents(), st.data())
@settings(max_examples=100)
def test_splice_and_full_rewrite_agree_on_digest(source, data):
    """Regeneration via the splice fast path and via the full
    tokenize/parse/rewrite pipeline must hash identically — the recorded
    digest cannot depend on which path rebuilt the document."""
    template = build_link_template(parse_html(source))
    values = sorted({span.value.strip() for span in template.spans})
    mapping = data.draw(rewrite_mappings(values))
    rewrite = lambda v: mapping.get(v)
    spliced, __ = template.splice(rewrite)
    rewritten = rewrite_html(source, rewrite)
    assert body_digest(spliced.encode("utf-8")) == \
        body_digest(rewritten.encode("utf-8"))


@given(html_documents(), st.data())
@settings(max_examples=75)
def test_repeated_splice_reconstruction_is_digest_stable(source, data):
    """Re-running the same rewrite against the same template yields the
    same digest: two servers independently regenerating one version agree
    without exchanging bytes."""
    template = build_link_template(parse_html(source))
    values = sorted({span.value.strip() for span in template.spans})
    mapping = data.draw(rewrite_mappings(values))
    rewrite = lambda v: mapping.get(v)
    first, __ = template.splice(rewrite)
    second, __ = build_link_template(parse_html(source)).splice(rewrite)
    assert body_digest(first.encode("utf-8")) == \
        body_digest(second.encode("utf-8"))


@given(html_documents(), st.data())
@settings(max_examples=75)
def test_second_round_splice_keeps_digest_chain(source, data):
    """Across successive regeneration rounds the digest always matches the
    bytes the round actually produced (stale digests never survive a
    rewrite that changed the body)."""
    template = build_link_template(parse_html(source))
    values = sorted({span.value.strip() for span in template.spans})
    first = data.draw(rewrite_mappings(values))
    out1, template = template.splice(lambda v: first.get(v))
    digest1 = body_digest(out1.encode("utf-8"))
    assert digest_matches(out1.encode("utf-8"), digest1)

    values2 = sorted({span.value.strip() for span in template.spans})
    second = data.draw(rewrite_mappings(values2))
    out2, __ = template.splice(lambda v: second.get(v))
    digest2 = body_digest(out2.encode("utf-8"))
    assert digest_matches(out2.encode("utf-8"), digest2)
    if out1 != out2:
        assert digest1 != digest2
