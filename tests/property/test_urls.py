"""Property tests: URL parse/join/normalize invariants."""

from hypothesis import given, settings, strategies as st

from repro.http.urls import URL, join_url, normalize_path, parse_url

_host = st.text(alphabet="abcdefghij.-", min_size=1, max_size=15).filter(
    lambda h: not h.startswith((".", "-")) and ":" not in h)
_port = st.integers(min_value=1, max_value=65535)
_segment = st.text(alphabet="abcdefghij0123456789_.-", min_size=1,
                   max_size=8).filter(lambda s: s not in (".", ".."))
_path = st.lists(_segment, max_size=5).map(lambda parts: "/" + "/".join(parts))


@given(_host, _port, _path)
@settings(max_examples=200)
def test_parse_str_round_trip(host, port, path):
    url = URL(host=host, port=port, path=path)
    assert parse_url(str(url)) == url


@given(_path)
def test_normalize_is_idempotent(path):
    once = normalize_path(path)
    assert normalize_path(once) == once


@given(_path)
def test_normalize_output_absolute_and_clean(path):
    normalized = normalize_path(path)
    assert normalized.startswith("/")
    assert "/./" not in normalized
    assert "/../" not in normalized


@given(_host, _port, _path, _path)
@settings(max_examples=200)
def test_join_absolute_path_keeps_server(host, port, base_path, ref_path):
    base = URL(host, port, base_path)
    joined = join_url(base, ref_path)
    assert joined.host == host
    assert joined.port == port
    assert joined.path == normalize_path(ref_path)


@given(_host, _port, _path, _segment)
@settings(max_examples=200)
def test_join_relative_stays_under_base_directory(host, port, base_path, name):
    base = URL(host, port, base_path)
    joined = join_url(base, name)
    directory = base_path.rsplit("/", 1)[0]
    assert joined.path.startswith(normalize_path(directory + "/").rstrip("/")
                                  or "/")


@given(_host, _port, _path)
def test_join_with_absolute_url_replaces_everything(host, port, path):
    base = URL("base", 80, "/dir/page.html")
    target = URL(host, port, path)
    assert join_url(base, str(target)) == target
