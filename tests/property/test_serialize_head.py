"""Property: ``serialize_head() + body`` is byte-identical to
``serialize()`` for every response.

The zero-copy send paths (``socket.sendmsg([head, body])`` gather
writes, ``serialize_head()`` + ``os.sendfile`` for disk-backed bodies)
rely on this split never changing a single wire byte relative to the
monolithic serializer.
"""

from hypothesis import given, settings, strategies as st

from repro.http.headers import Headers
from repro.http.messages import Response

_status = st.sampled_from([200, 204, 206, 301, 302, 304, 400, 404, 416,
                           500, 503])
_token = st.text(alphabet="abcdefghijklmnopqrstuvwxyz-", min_size=1,
                 max_size=12)
_value = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789 /=;,.:+-\"",
    max_size=24)
_body = st.binary(max_size=512)


@st.composite
def responses(draw):
    headers = Headers()
    for __ in range(draw(st.integers(0, 6))):
        headers.add(draw(_token).title(), draw(_value))
    if draw(st.booleans()):
        # Exercise both the caller-supplied and the synthesized
        # Content-Length branches of serialize_head().
        headers.set("Content-Length", str(draw(st.integers(0, 10_000))))
    return Response(status=draw(_status), headers=headers, body=draw(_body))


@settings(max_examples=200, deadline=None)
@given(responses())
def test_head_plus_body_equals_serialize(response):
    assert response.serialize_head() + response.body == response.serialize()


@settings(max_examples=50, deadline=None)
@given(responses())
def test_head_ends_with_blank_line_and_has_no_body_bytes(response):
    head = response.serialize_head()
    assert head.endswith(b"\r\n\r\n")
    # The head is pure status line + headers: parsing it back as latin-1
    # text must succeed and contain the status line.
    text = head.decode("latin-1")
    assert text.startswith(f"{response.version} {response.status} ")


@settings(max_examples=50, deadline=None)
@given(responses())
def test_serialize_head_is_idempotent(response):
    # First call may synthesize Content-Length into the header map;
    # the second call must produce the identical bytes.
    assert response.serialize_head() == response.serialize_head()
