"""Property tests: event-loop ordering and window-counter bounds."""

from hypothesis import given, settings, strategies as st

from repro.core.metrics import WindowCounter
from repro.sim.events import EventLoop
from repro.sim.network import Serializer

_times = st.lists(st.floats(min_value=0.0, max_value=1e6,
                            allow_nan=False, allow_infinity=False),
                  max_size=50)


@given(_times)
@settings(max_examples=200)
def test_events_fire_in_nondecreasing_time_order(times):
    loop = EventLoop()
    fired = []
    for when in times:
        loop.schedule(when, lambda w=when: fired.append(loop.now))
    loop.run_until(2e6)
    assert fired == sorted(fired)
    assert len(fired) == len(times)


@given(_times)
def test_run_until_processes_exactly_due_events(times):
    cutoff = 5e5
    loop = EventLoop()
    for when in times:
        loop.schedule(when, lambda: None)
    fired = loop.run_until(cutoff)
    assert fired == sum(1 for t in times if t <= cutoff)


@given(st.lists(st.tuples(st.floats(0, 1000, allow_nan=False),
                          st.floats(0, 100, allow_nan=False)), max_size=40))
def test_serializer_intervals_never_overlap(jobs):
    resource = Serializer("r")
    intervals = []
    clock = 0.0
    for earliest, duration in jobs:
        clock = max(clock, earliest)
        intervals.append(resource.reserve(earliest, duration))
    for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
        assert e1 <= s2 or s2 == e1  # strictly sequential
        assert s2 >= s1


@given(st.lists(st.floats(0, 1000, allow_nan=False), min_size=1,
                max_size=60).map(sorted),
       st.floats(0.1, 50, allow_nan=False))
def test_window_rate_bounded_by_event_count(times, window):
    counter = WindowCounter(window)
    for when in times:
        counter.record(when)
    now = times[-1]
    rate = counter.rate(now)
    assert 0.0 <= rate <= len(times) / window
    assert counter.lifetime_count == len(times)
