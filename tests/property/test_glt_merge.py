"""Property tests: GLT gossip converges regardless of delivery order."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.document import Location
from repro.core.glt import GlobalLoadTable
from repro.http.piggyback import LoadReport

_server = st.sampled_from(["a:80", "b:80", "c:80", "d:80"])
_report = st.builds(LoadReport, server=_server,
                    metric=st.floats(0, 1e6, allow_nan=False),
                    timestamp=st.floats(0, 1e6, allow_nan=False))
# A real server emits exactly one measurement per (server, timestamp), so
# ties between different metrics cannot occur on the wire; encode that.
_reports = st.lists(_report, max_size=20,
                    unique_by=lambda r: (r.server, r.timestamp))

OWN = Location("own", 80)


def table_after(reports):
    table = GlobalLoadTable(OWN)
    table.merge(reports)
    return {r.server: r for r in table.snapshot()}


@given(_reports, st.randoms())
@settings(max_examples=200)
def test_merge_order_independent(reports, rng):
    shuffled = list(reports)
    rng.shuffle(shuffled)
    assert table_after(reports) == table_after(shuffled)


@given(_reports)
@settings(max_examples=200)
def test_merge_idempotent(reports):
    table = GlobalLoadTable(OWN)
    table.merge(reports)
    snapshot = table.snapshot()
    assert table.merge(reports) == 0
    assert table.snapshot() == snapshot


@given(_reports)
def test_winner_has_newest_timestamp(reports):
    table = table_after(reports)
    for server, winner in table.items():
        newest = max(r.timestamp for r in reports if r.server == server)
        assert winner.timestamp == newest


@given(_reports, _reports)
@settings(max_examples=200)
def test_merge_commutes_across_batches(batch_a, batch_b):
    forward = GlobalLoadTable(OWN)
    forward.merge(batch_a)
    forward.merge(batch_b)
    backward = GlobalLoadTable(OWN)
    backward.merge(batch_b)
    backward.merge(batch_a)
    # Same surviving (server, timestamp) pairs; metrics may differ only if
    # two distinct reports share a timestamp (tie keeps first seen).
    assert {(r.server, r.timestamp) for r in forward.snapshot()} == \
        {(r.server, r.timestamp) for r in backward.snapshot()}


@given(_reports)
def test_least_loaded_is_minimal(reports):
    table = GlobalLoadTable(OWN)
    table.merge(reports)
    choice = table.least_loaded()
    if choice is None:
        return
    chosen = table.get(choice)
    for row in table.snapshot():
        assert chosen.metric <= row.metric
