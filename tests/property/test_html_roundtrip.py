"""Property tests: HTML parse/serialize/rewrite invariants."""

from hypothesis import given, settings, strategies as st

from repro.html.links import extract_links
from repro.html.parser import parse_html
from repro.html.rewriter import rewrite_html, rewrite_links
from repro.html.serializer import serialize_html

# --- generators -------------------------------------------------------

_name = st.text(alphabet="abcdefghij", min_size=1, max_size=8)
_href = st.builds(lambda s, ext: f"/{s}.{ext}",
                  _name, st.sampled_from(["html", "gif", "jpg"]))
_text = st.text(alphabet="abc xyz,.!?", max_size=30)


@st.composite
def html_documents(draw):
    """Well-formed-ish documents with a known set of references."""
    pieces = []
    for __ in range(draw(st.integers(0, 8))):
        kind = draw(st.sampled_from(["a", "img", "frame", "text", "b"]))
        if kind == "a":
            href = draw(_href)
            pieces.append(f'<a href="{href}">{draw(_text)}</a>')
        elif kind == "img":
            pieces.append(f'<img src="{draw(_href)}">')
        elif kind == "frame":
            pieces.append(f'<frame src="{draw(_href)}">')
        elif kind == "b":
            pieces.append(f"<b>{draw(_text)}</b>")
        else:
            pieces.append(draw(_text))
    return "".join(pieces)


# --- properties -------------------------------------------------------

@given(html_documents())
@settings(max_examples=150)
def test_serialize_parse_preserves_link_set(source):
    document = parse_html(source)
    original_links = [(l.tag, l.value) for l in extract_links(document)]
    round_tripped = parse_html(serialize_html(document))
    assert [(l.tag, l.value) for l in extract_links(round_tripped)] == \
        original_links


@given(html_documents())
@settings(max_examples=150)
def test_serialize_parse_preserves_text(source):
    document = parse_html(source)
    round_tripped = parse_html(serialize_html(document))
    assert round_tripped.text_content() == document.text_content()


@given(html_documents())
@settings(max_examples=100)
def test_canonical_form_is_fixed_point(source):
    once = rewrite_html(source, lambda v: None)
    twice = rewrite_html(once, lambda v: None)
    assert once == twice


@given(html_documents())
@settings(max_examples=100)
def test_identity_rewrite_changes_nothing(source):
    document = parse_html(source)
    assert rewrite_links(document, lambda v: None) == 0


@given(html_documents(), _href)
@settings(max_examples=100)
def test_rewrite_then_reverse_restores_link_set(source, replacement):
    document = parse_html(source)
    targets = sorted({l.value for l in extract_links(document)})
    if not targets or replacement in targets:
        return
    victim = targets[0]
    forward = rewrite_html(source,
                           lambda v: replacement if v == victim else None)
    backward = rewrite_html(forward,
                            lambda v: victim if v == replacement else None)
    original = sorted(l.value for l in extract_links(parse_html(source)))
    restored = sorted(l.value for l in extract_links(parse_html(backward)))
    assert restored == original


@given(st.text(max_size=200))
@settings(max_examples=200)
def test_parser_never_crashes_on_arbitrary_input(garbage):
    document = parse_html(garbage)
    serialize_html(document)
    extract_links(document)
