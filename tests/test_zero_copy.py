"""Zero-copy serve path: cached bodies travel to the socket unduplicated.

Three layers are covered:

- the engine fast path hands out the *same* bytes object the byte cache
  holds (no per-request serialize-and-copy);
- the threaded front end's gather write (``socket.sendmsg``) puts
  memoryviews over the head and the cached body on the wire without
  ever calling the monolithic ``Response.serialize()``;
- the event-loop out-queue advances through partial writes by slicing
  memoryviews, never rebuilding byte strings;
- disk-backed bodies above ``sendfile_min_bytes`` ride ``os.sendfile``
  (``socket.sendfile``) instead of being read into Python at all.
"""

import os
import socket
import time

import pytest

from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.http.messages import Request, Response
from repro.server.aio import _OutQueue
from repro.server.engine import DCWSEngine, EngineReply
from repro.server.filestore import DiskStore, MemoryStore
from repro.server.threaded import ThreadedDCWSServer, send_response

HOME = Location("127.0.0.1", 8001)

SITE = {
    "/index.html": b"<html>index</html>",
    "/big.html": b"<html>" + b"z" * 4000 + b"</html>",
}


def make_engine(**config_kwargs):
    config_kwargs.setdefault("stats_interval", 1000.0)
    engine = DCWSEngine(HOME, ServerConfig(**config_kwargs),
                        MemoryStore(SITE), entry_points=[], peers=())
    engine.initialize(0.0)
    return engine


def get(engine, path, now=1.0, headers=None):
    request = Request(method="GET", target=path)
    for name, value in (headers or {}).items():
        request.headers.set(name, value)
    return engine.handle_request(request, now)


class TestEngineBodyIdentity:
    def test_repeat_get_serves_the_cached_bytes_object(self):
        engine = make_engine()
        first = get(engine, "/big.html", now=1.0)
        assert isinstance(first, EngineReply)
        cached_body = first.response.body
        second = get(engine, "/big.html", now=2.0)
        # Identity, not equality: the hot path must not copy the body.
        assert second.response.body is cached_body

    def test_fast_path_reuses_cached_body(self):
        engine = make_engine()
        first = get(engine, "/big.html", now=1.0)
        request = Request(method="GET", target="/big.html")
        hit = engine.fast_lookup(request, 2.0)
        assert hit is not None
        reply = engine.fast_commit(hit, request, 2.0)
        assert reply is not None
        assert reply.response.body is first.response.body


class _RecordingConnection:
    """A fake socket capturing exactly what the gather write was given."""

    def __init__(self, sendmsg_limit=None):
        self.sendmsg_calls = []
        self.sendall_data = b""
        self.sendmsg_limit = sendmsg_limit

    def sendmsg(self, buffers):
        buffers = list(buffers)
        self.sendmsg_calls.append(buffers)
        total = sum(len(b) for b in buffers)
        if self.sendmsg_limit is not None:
            total = min(total, self.sendmsg_limit)
        return total

    def sendall(self, data):
        self.sendall_data += bytes(data)


class TestThreadedGatherWrite:
    def test_sendmsg_receives_view_over_the_exact_body_object(self):
        body = b"B" * 2048
        response = Response(status=200, body=body)
        connection = _RecordingConnection()
        send_response(connection, response)
        flat = [view for call in connection.sendmsg_calls for view in call]
        assert len(flat) >= 2
        body_view = flat[-1]
        assert isinstance(body_view, memoryview)
        assert body_view.obj is body  # zero body-byte copies

    def test_serialize_never_called_on_gather_path(self, monkeypatch):
        calls = {"n": 0}
        original = Response.serialize

        def counting(self):
            calls["n"] += 1
            return original(self)

        monkeypatch.setattr(Response, "serialize", counting)
        response = Response(status=200, body=b"X" * 512)
        send_response(_RecordingConnection(), response)
        assert calls["n"] == 0

    def test_partial_sendmsg_completes_without_copying_head_plus_body(self):
        body = b"C" * 1000
        response = Response(status=200, body=body)
        connection = _RecordingConnection(sendmsg_limit=7)
        send_response(connection, response)
        # Reassemble exactly what hit the wire across the partial writes.
        wire_parts = []
        for call in connection.sendmsg_calls:
            total = min(sum(len(b) for b in call), 7)
            taken = 0
            for view in call:
                take = min(len(view), total - taken)
                wire_parts.append(bytes(view[:take]))
                taken += take
                if taken == total:
                    break
        wire = b"".join(wire_parts)
        assert wire == response.serialize_head() + body


class TestOutQueue:
    def test_segments_kept_by_reference(self):
        queue = _OutQueue()
        head, body = b"HEAD", b"BODY" * 100
        queue.append(head)
        queue.append(body)
        buffers = queue.buffers()
        assert buffers[0].obj is head
        assert buffers[1].obj is body

    def test_advance_slices_without_rebuilding(self):
        queue = _OutQueue()
        body = b"0123456789"
        queue.append(body)
        queue.advance(4)
        (view,) = queue.buffers()
        assert bytes(view) == b"456789"
        assert view.obj is body  # a slice of the same buffer, not a copy
        queue.advance(6)
        assert not queue
        assert len(queue) == 0

    def test_empty_appends_ignored(self):
        queue = _OutQueue()
        queue.append(b"")
        assert not queue


class TestSendfilePath:
    def _serve_tree(self, tmp_path, body):
        root = tmp_path / "docs"
        root.mkdir()
        (root / "big.html").write_bytes(body)
        (root / "index.html").write_bytes(b"<html>i</html>")
        store = DiskStore(str(root))
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        config = ServerConfig(stats_interval=1000.0, sendfile_min_bytes=1024,
                              byte_cache_bytes=256)  # too small to cache body
        engine = DCWSEngine(Location("127.0.0.1", port), config, store,
                            entry_points=[], peers=())
        engine.initialize(0.0)
        return engine

    def test_engine_emits_file_body_for_large_disk_documents(self, tmp_path):
        body = b"<html>" + b"s" * 200_000 + b"</html>"
        engine = self._serve_tree(tmp_path, body)
        server = ThreadedDCWSServer(engine, tick_period=5.0)
        server.start()
        try:
            with socket.create_connection(("127.0.0.1", server.port),
                                          timeout=5) as sock:
                sock.sendall(b"GET /big.html HTTP/1.1\r\nHost: x\r\n"
                             b"Connection: close\r\n\r\n")
                data = b""
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    data += chunk
        finally:
            server.stop()
        head, __, got = data.partition(b"\r\n\r\n")
        assert b" 200 " in head.split(b"\r\n", 1)[0]
        assert got == body
        assert f"Content-Length: {len(body)}".encode() in head

    def test_sendfile_source_gated_below_threshold(self, tmp_path):
        engine = self._serve_tree(tmp_path, b"tiny")
        engine.sendfile_enabled = True
        reply = get(engine, "/big.html")
        assert isinstance(reply, EngineReply)
        assert reply.response.body_file is None  # under sendfile_min_bytes

    def test_disk_store_reports_path_and_size(self, tmp_path):
        root = tmp_path / "d"
        root.mkdir()
        (root / "a.html").write_bytes(b"x" * 77)
        store = DiskStore(str(root))
        source = store.sendfile_source("/a.html")
        assert source is not None
        path, size = source
        assert size == 77
        assert os.path.isfile(path)
        assert store.sendfile_source("/missing.html") is None

    def test_memory_store_never_offers_sendfile(self):
        assert MemoryStore({"/a": b"x"}).sendfile_source("/a") is None
