"""Unit tests for consistency timers (DueTracker, PeerHealth)."""

from repro.core.consistency import DueTracker, PeerHealth


class TestDueTracker:
    def test_not_due_before_interval(self):
        tracker = DueTracker(interval=120.0)
        tracker.register("/doc", now=0.0)
        assert tracker.due(now=60.0) == []

    def test_due_after_interval(self):
        tracker = DueTracker(interval=120.0)
        tracker.register("/doc", now=0.0)
        assert tracker.due(now=120.0) == ["/doc"]

    def test_mark_resets_clock(self):
        tracker = DueTracker(interval=100.0)
        tracker.register("/doc", now=0.0)
        tracker.mark("/doc", now=150.0)
        assert tracker.due(now=200.0) == []
        assert tracker.due(now=250.0) == ["/doc"]

    def test_register_is_idempotent(self):
        tracker = DueTracker(interval=10.0)
        tracker.register("/doc", now=0.0)
        tracker.register("/doc", now=9.0)  # must not push back the deadline
        assert tracker.due(now=10.0) == ["/doc"]

    def test_forget(self):
        tracker = DueTracker(interval=10.0)
        tracker.register("/doc", now=0.0)
        tracker.forget("/doc")
        assert tracker.due(now=100.0) == []
        assert "/doc" not in tracker

    def test_due_sorted_for_determinism(self):
        tracker = DueTracker(interval=1.0)
        tracker.register("/b", now=0.0)
        tracker.register("/a", now=0.0)
        assert tracker.due(now=5.0) == ["/a", "/b"]

    def test_len_and_keys(self):
        tracker = DueTracker(interval=1.0)
        tracker.register("x", 0.0)
        tracker.register("y", 0.0)
        assert len(tracker) == 2
        assert tracker.keys() == ["x", "y"]
        assert tracker.last_serviced("x") == 0.0
        assert tracker.last_serviced("absent") is None


class TestPeerHealth:
    def test_dead_after_limit(self):
        health = PeerHealth(failure_limit=3)
        assert health.record_failure("p") == 1
        assert not health.is_dead("p")
        health.record_failure("p")
        assert health.record_failure("p") == 3
        assert health.is_dead("p")
        assert health.dead_peers() == ["p"]

    def test_success_resets(self):
        health = PeerHealth(failure_limit=2)
        health.record_failure("p")
        health.record_success("p")
        health.record_failure("p")
        assert not health.is_dead("p")

    def test_suspects_are_partial_failures(self):
        health = PeerHealth(failure_limit=3)
        health.record_failure("p")
        assert health.suspects() == ["p"]
        health.record_failure("p")
        health.record_failure("p")
        assert health.suspects() == []

    def test_forget_and_reset(self):
        health = PeerHealth(failure_limit=1)
        health.record_failure("a")
        health.record_failure("b")
        health.forget("a")
        assert health.dead_peers() == ["b"]
        health.reset()
        assert health.dead_peers() == []

    def test_reset_specific_peers(self):
        health = PeerHealth(failure_limit=1)
        health.record_failure("a")
        health.record_failure("b")
        health.reset(["a"])
        assert health.dead_peers() == ["b"]


class TestPeerRtt:
    def test_no_samples_means_none(self):
        health = PeerHealth(failure_limit=3)
        assert health.rtt("p") is None
        assert health.rtts() == {}

    def test_first_sample_installs_directly(self):
        health = PeerHealth(failure_limit=3)
        health.record_success("p", now=1.0, rtt=0.050)
        assert health.rtt("p") == 0.050

    def test_ewma_smooths_toward_new_samples(self):
        health = PeerHealth(failure_limit=3)
        health.record_success("p", now=1.0, rtt=0.100)
        health.record_success("p", now=2.0, rtt=0.200)
        # (1 - 0.2) * 0.100 + 0.2 * 0.200 = 0.120
        assert abs(health.rtt("p") - 0.120) < 1e-9

    def test_success_without_rtt_keeps_estimate(self):
        health = PeerHealth(failure_limit=3)
        health.record_success("p", now=1.0, rtt=0.080)
        health.record_success("p", now=2.0)  # ping path: no timing
        assert health.rtt("p") == 0.080

    def test_forget_and_reset_drop_rtt(self):
        health = PeerHealth(failure_limit=3)
        health.record_success("a", now=1.0, rtt=0.010)
        health.record_success("b", now=1.0, rtt=0.020)
        health.forget("a")
        assert health.rtt("a") is None
        assert health.rtt("b") == 0.020
        health.reset()
        assert health.rtts() == {}
