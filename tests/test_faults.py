"""Deterministic fault injection: rules, hooks, and seed reproducibility."""

import socket

import pytest

from repro.errors import ConfigError, HTTPError
from repro.faults import (
    FaultEvent,
    FaultPlan,
    FaultRule,
    InjectedConnectRefused,
    InjectedDiskError,
    InjectedReset,
    InjectedTimeout,
    InjectedTruncation,
)


class TestFaultRule:
    def test_kind_implies_site(self):
        assert FaultRule(kind="connect_refused").site == "connect"
        assert FaultRule(kind="reset").site == "exchange"
        assert FaultRule(kind="disk_error").site == "disk"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultRule(kind="meteor_strike")

    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigError):
            FaultRule(kind="reset", site="carrier_pigeon")

    def test_probability_bounds(self):
        with pytest.raises(ConfigError):
            FaultRule(kind="reset", probability=1.5)

    def test_peer_filter(self):
        rule = FaultRule(kind="reset", peer="h:80")
        assert rule.matches_target("exchange", "h:80")
        assert not rule.matches_target("exchange", "other:80")
        assert not rule.matches_target("connect", "h:80")

    def test_disk_rules_match_on_name(self):
        rule = FaultRule(kind="disk_error", name="/a.html")
        assert rule.matches_target("disk", "/a.html")
        assert not rule.matches_target("disk", "/b.html")


class TestInjection:
    def test_connect_refused_is_a_real_connection_error(self):
        plan = FaultPlan([FaultRule(kind="connect_refused")])
        with pytest.raises(ConnectionRefusedError):
            plan.on_connect("h:80")
        assert isinstance(InjectedConnectRefused("x"), OSError)

    def test_reset_and_truncation_exchange_faults(self):
        plan = FaultPlan([FaultRule(kind="reset", peer="a:80"),
                          FaultRule(kind="truncate", peer="b:80")])
        with pytest.raises(ConnectionResetError):
            plan.on_exchange("a:80")
        with pytest.raises(HTTPError):
            plan.on_exchange("b:80")
        assert isinstance(InjectedReset("x"), OSError)
        assert isinstance(InjectedTruncation("x"), HTTPError)

    def test_blackhole_raises_timeout(self):
        plan = FaultPlan([FaultRule(kind="blackhole")])
        with pytest.raises(socket.timeout):
            plan.on_connect("h:80")
        assert isinstance(InjectedTimeout("x"), OSError)

    def test_disk_error(self):
        plan = FaultPlan([FaultRule(kind="disk_error")])
        with pytest.raises(OSError):
            plan.on_disk_read("/a.html")
        assert isinstance(InjectedDiskError("x"), OSError)

    def test_delay_sleeps_instead_of_raising(self):
        slept = []
        plan = FaultPlan([FaultRule(kind="delay", delay=0.25)],
                         sleep=slept.append)
        plan.on_exchange("h:80")  # must not raise
        assert slept == [0.25]

    def test_skip_first_lets_early_events_through(self):
        plan = FaultPlan([FaultRule(kind="reset", skip_first=2)])
        plan.on_exchange("h:80")
        plan.on_exchange("h:80")
        with pytest.raises(ConnectionResetError):
            plan.on_exchange("h:80")

    def test_max_injections_retires_the_rule(self):
        plan = FaultPlan([FaultRule(kind="reset", max_injections=1)])
        with pytest.raises(ConnectionResetError):
            plan.on_exchange("h:80")
        plan.on_exchange("h:80")  # rule exhausted: no fault

    def test_disabled_plan_is_inert(self):
        plan = FaultPlan([FaultRule(kind="connect_refused")])
        plan.enabled = False
        plan.on_connect("h:80")
        assert plan.injected == []

    def test_dynamic_block_partitions_and_heals(self):
        plan = FaultPlan()
        plan.block("h:80")
        with pytest.raises(socket.timeout):
            plan.on_connect("h:80")
        plan.on_connect("other:80")  # only the blocked peer is dark
        plan.unblock("h:80")
        plan.on_connect("h:80")
        kinds = [event.kind for event in plan.injected]
        assert kinds == ["blackhole"]


class TestDeterminism:
    RULES = [FaultRule(kind="reset", probability=0.4),
             FaultRule(kind="connect_refused", probability=0.3,
                       peer="b:80")]

    @staticmethod
    def drive(plan: FaultPlan) -> None:
        for i in range(50):
            target = "a:80" if i % 3 else "b:80"
            try:
                plan.on_connect(target)
                plan.on_exchange(target)
            except OSError:
                pass

    def test_same_seed_same_schedule(self):
        first = FaultPlan(self.RULES, seed=1234)
        second = FaultPlan(self.RULES, seed=1234)
        self.drive(first)
        self.drive(second)
        assert first.injected  # the probabilities actually fired
        assert first.schedule() == second.schedule()

    def test_different_seed_different_schedule(self):
        first = FaultPlan(self.RULES, seed=1)
        second = FaultPlan(self.RULES, seed=2)
        self.drive(first)
        self.drive(second)
        assert first.schedule() != second.schedule()

    def test_events_are_indexed_in_order(self):
        plan = FaultPlan([FaultRule(kind="reset")])
        for __ in range(3):
            with pytest.raises(ConnectionResetError):
                plan.on_exchange("h:80")
        assert [event.index for event in plan.injected] == [0, 1, 2]
        assert all(isinstance(event, FaultEvent)
                   for event in plan.injected)

    def test_from_env_reads_seed(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SEED", "77")
        plan = FaultPlan.from_env()
        assert plan.seed == 77
        monkeypatch.delenv("REPRO_FAULT_SEED")
        assert FaultPlan.from_env().seed == 0


class TestSimDeterminism:
    """The same seed yields the same fault schedule in the simulator."""

    @staticmethod
    def run_sim(seed: int):
        from repro.core.config import ServerConfig
        from repro.datasets.synthetic import build_synthetic_site
        from repro.sim.cluster import ClusterConfig, SimCluster

        plan = FaultPlan([FaultRule(kind="reset", probability=0.5)],
                         seed=seed)
        site = build_synthetic_site(pages=20, images=8, fanout=4, seed=5)
        config = ClusterConfig(servers=2, clients=6, duration=30.0,
                               sample_interval=10.0, seed=9,
                               server_config=ServerConfig().scaled(0.2),
                               faults=plan)
        SimCluster(site, config).run()
        return plan.schedule()

    def test_sim_schedule_reproducible(self):
        assert self.run_sim(42) == self.run_sim(42)
