"""Unit tests for the benchmark harness (scales, config building)."""

import pytest

from repro.bench.harness import (
    FULL_SCALE,
    PAPER_SCALE,
    QUICK_SCALE,
    build_site,
    cluster_config,
    current_scale,
    run_dcws,
    saturating_clients,
    scaled_costs,
    scaled_server_config,
    with_duration,
)
from repro.core.config import ServerConfig


class TestScales:
    def test_default_scale_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert current_scale() is QUICK_SCALE

    def test_env_selects_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        assert current_scale() is PAPER_SCALE
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert current_scale() is FULL_SCALE

    def test_unknown_scale_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "warp9")
        assert current_scale() is QUICK_SCALE

    def test_paper_scale_keeps_table1(self):
        config = scaled_server_config(PAPER_SCALE)
        assert config == ServerConfig()

    def test_quick_scale_compresses_intervals(self):
        config = scaled_server_config(QUICK_SCALE)
        assert config.stats_interval == pytest.approx(
            10.0 * QUICK_SCALE.time_factor)
        assert config.validation_interval / config.stats_interval == \
            pytest.approx(12.0)

    def test_scaled_costs_compress_backoff(self):
        costs = scaled_costs(QUICK_SCALE)
        assert costs.backoff_base == pytest.approx(QUICK_SCALE.time_factor)
        # Server-side constants are untouched.
        assert costs.request_cpu == pytest.approx(0.001)

    def test_with_duration(self):
        shorter = with_duration(QUICK_SCALE, 5.0)
        assert shorter.duration == 5.0
        assert shorter.time_factor == QUICK_SCALE.time_factor


class TestBuilders:
    def test_build_site_by_name(self):
        site = build_site("lod")
        assert site.name == "lod"

    def test_build_site_unknown(self):
        with pytest.raises(KeyError):
            build_site("nope")

    def test_saturating_clients(self):
        assert saturating_clients(QUICK_SCALE, 4) == \
            4 * QUICK_SCALE.clients_per_server

    def test_cluster_config_defaults(self):
        config = cluster_config(QUICK_SCALE, servers=3, clients=7)
        assert config.servers == 3
        assert config.clients == 7
        assert config.duration == QUICK_SCALE.duration
        assert config.prewarm


class TestRunDcws:
    def test_tiny_run_produces_result(self):
        site = build_site("lod")
        result = run_dcws(site, servers=2, clients=8,
                          scale=with_duration(QUICK_SCALE, 10.0))
        assert result.client_stats.requests > 0
        assert len(result.series) > 0
        assert result.config.servers == 2
