"""Exception hierarchy sanity checks."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.HTTPError, errors.URLError, errors.HTMLParseError,
        errors.DocumentNotFound, errors.MigrationError, errors.NamingError,
        errors.SimulationError, errors.ConfigError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_url_error_is_http_error(self):
        # URL problems surface through the HTTP layer.
        assert issubclass(errors.URLError, errors.HTTPError)

    def test_document_not_found_carries_name(self):
        exc = errors.DocumentNotFound("/missing.html")
        assert exc.name == "/missing.html"
        assert "/missing.html" in str(exc)

    def test_one_catch_for_the_whole_api(self):
        # Library callers can catch ReproError at the boundary.
        with pytest.raises(errors.ReproError):
            raise errors.MigrationError("nope")
