"""Unit tests for document stores (memory and disk)."""

import pytest

from repro.errors import DocumentNotFound
from repro.server.filestore import (
    DiskStore,
    MemoryStore,
    guess_content_type,
)


class TestContentType:
    @pytest.mark.parametrize("name,expected", [
        ("/a.html", "text/html"),
        ("/a.HTM", "text/html"),
        ("/img/x.gif", "image/gif"),
        ("/x.jpg", "image/jpeg"),
        ("/x.jpeg", "image/jpeg"),
        ("/x.png", "image/png"),
        ("/x.css", "text/css"),
        ("/x.bin", "application/octet-stream"),
        ("/noext", "application/octet-stream"),
    ])
    def test_guess(self, name, expected):
        assert guess_content_type(name) == expected


class TestMemoryStore:
    def test_put_get(self):
        store = MemoryStore()
        store.put("/a.html", b"hi")
        assert store.get("/a.html") == b"hi"
        assert store.size("/a.html") == 2
        assert "/a.html" in store

    def test_get_missing_raises(self):
        with pytest.raises(DocumentNotFound):
            MemoryStore().get("/missing")
        with pytest.raises(DocumentNotFound):
            MemoryStore().size("/missing")

    def test_put_requires_absolute_name(self):
        with pytest.raises(DocumentNotFound):
            MemoryStore().put("relative.html", b"x")

    def test_delete_idempotent(self):
        store = MemoryStore({"/a": b"x"})
        store.delete("/a")
        store.delete("/a")
        assert "/a" not in store

    def test_names_sorted(self):
        store = MemoryStore({"/b": b"", "/a": b""})
        assert store.names() == ["/a", "/b"]

    def test_initial_dict_copied(self):
        initial = {"/a": b"x"}
        store = MemoryStore(initial)
        initial["/b"] = b"y"
        assert "/b" not in store

    def test_items_and_total(self):
        store = MemoryStore({"/a": b"xx", "/b": b"yyy"})
        assert dict(store.items()) == {"/a": b"xx", "/b": b"yyy"}
        assert store.total_bytes() == 5

    def test_overwrite(self):
        store = MemoryStore({"/a": b"old"})
        store.put("/a", b"new")
        assert store.get("/a") == b"new"


class TestDiskStore:
    def test_put_get_round_trip(self, tmp_path):
        store = DiskStore(str(tmp_path))
        store.put("/dir/a.html", b"content")
        assert store.get("/dir/a.html") == b"content"
        assert store.size("/dir/a.html") == 7

    def test_names_recovers_paths(self, tmp_path):
        store = DiskStore(str(tmp_path))
        store.put("/a.html", b"1")
        store.put("/x/y/b.gif", b"2")
        assert store.names() == ["/a.html", "/x/y/b.gif"]

    def test_migrate_marker_encoded(self, tmp_path):
        store = DiskStore(str(tmp_path))
        key = "/~migrate/home/80/a.html"
        store.put(key, b"pulled")
        assert store.get(key) == b"pulled"
        assert key in store.names()
        # The marker directory never contains a literal '~'.
        assert not any("~" in p for p in _walk_names(tmp_path))

    def test_traversal_rejected(self, tmp_path):
        store = DiskStore(str(tmp_path))
        with pytest.raises(DocumentNotFound):
            store.put("/../escape.html", b"x")
        with pytest.raises(DocumentNotFound):
            store.get("/../../etc/passwd")

    def test_get_missing_raises(self, tmp_path):
        with pytest.raises(DocumentNotFound):
            DiskStore(str(tmp_path)).get("/missing.html")

    def test_delete(self, tmp_path):
        store = DiskStore(str(tmp_path))
        store.put("/a.html", b"x")
        store.delete("/a.html")
        store.delete("/a.html")
        assert store.names() == []


def _walk_names(root):
    import os

    for dirpath, dirnames, filenames in os.walk(str(root)):
        for entry in dirnames + filenames:
            yield entry
