"""Unit tests for link-template splice reconstruction."""

from repro.html.parser import parse_html
from repro.html.rewriter import rewrite_html
from repro.html.serializer import serialize_html
from repro.html.template import LinkSpan, LinkTemplate, build_link_template


def template_of(source: str) -> LinkTemplate:
    return build_link_template(parse_html(source))


def migrate(value):
    if value.endswith(".html"):
        return f"http://coop:81/~migrate/home/80{value}"
    return None


class TestBuild:
    def test_source_is_canonical_serialization(self):
        source = "<html><a href=/a.html>A</a><IMG SRC='/i.gif'></html>"
        template = template_of(source)
        assert template.source == serialize_html(parse_html(source))

    def test_spans_cover_followable_links(self):
        template = template_of(
            '<a href="/a.html">A</a><img src="/i.gif">'
            '<a href="#frag">skip</a><a href="mailto:x@y">skip</a>')
        assert [(s.tag, s.value) for s in template.spans] == [
            ("a", "/a.html"), ("img", "/i.gif")]

    def test_span_offsets_address_the_values(self):
        template = template_of('<a href="/a.html">A</a><frame src="/f.html">')
        for span in template.spans:
            assert template.source[span.start:span.end] == span.value

    def test_duplicate_attribute_first_occurrence_only(self):
        # get_attr/set_attr touch the first occurrence; so must the spans.
        template = template_of('<a href="/one.html" href="/two.html">x</a>')
        assert [s.value for s in template.spans] == ["/one.html"]

    def test_bare_and_unvalued_attributes_ignored(self):
        template = template_of('<a href>x</a><input checked src="/i.gif">')
        assert [s.value for s in template.spans] == ["/i.gif"]


class TestSplice:
    def test_identical_to_parse_tree_rewriter(self):
        source = ('<html><head><title>t</title></head><body>'
                  '<a href="/a.html">A</a> text <img src="/i.gif">'
                  '<a href="/b.html">B</a></body></html>')
        output, __ = template_of(source).splice(migrate)
        assert output == rewrite_html(source, migrate)
        assert "~migrate" in output

    def test_no_changes_returns_source_verbatim(self):
        source = '<a href="/a.html">A</a><p>text</p>'
        template = template_of(source)
        output, next_template = template.splice(lambda v: None)
        assert output == template.source
        assert [s.value for s in next_template.spans] == ["/a.html"]

    def test_identity_replacement_is_a_no_op(self):
        source = '<a href="/a.html">A</a>'
        template = template_of(source)
        output, __ = template.splice(lambda v: v)
        assert output == template.source

    def test_replacement_is_escaped_like_the_serializer(self):
        source = '<a href="/a.html">A</a>'
        nasty = '/x.html?a=1&b="2"'
        output, __ = template_of(source).splice(lambda v: nasty)
        assert output == rewrite_html(source, lambda v: nasty)
        assert "&amp;" in output and "&quot;" in output

    def test_entities_in_original_value_round_trip(self):
        source = '<a href="/x.html?a=1&amp;b=2">x</a><a href="/y.html">y</a>'
        mapping = {"/y.html": "/moved.html"}
        rewrite = lambda v: mapping.get(v)
        output, __ = template_of(source).splice(rewrite)
        assert output == rewrite_html(source, rewrite)
        # The untouched entity-bearing value survives byte-for-byte.
        assert "a=1&amp;b=2" in output

    def test_messy_markup_matches_full_rewriter(self):
        source = ("<!DOCTYPE html><!-- note --><body background=/bg.gif>"
                  "<A HREF=/a.html>go</A><script src='/s.js'>var a = '<a href=\"/no.html\">';"
                  "</script><p>bare & amp <frame src=/f.html>")
        output, __ = template_of(source).splice(migrate)
        assert output == rewrite_html(source, migrate)

    def test_successive_splices_track_spans(self):
        source = '<a href="/a.html">A</a><a href="/b.html">B</a>'
        template = template_of(source)
        out1, template = template.splice(migrate)
        # Second round: rewrite the migrated URL of /a.html back home.
        back = lambda v: "/a.html" if "~migrate" in v and "a.html" in v else None
        out2, template = template.splice(back)
        assert out2 == rewrite_html(out1, back)
        for span in template.spans:
            assert template.source[span.start:span.end] == span.value

    def test_splice_all_with_precomputed_replacements(self):
        source = '<a href="/a.html">A</a><img src="/i.gif">'
        template = template_of(source)
        replacements = template.compute_replacements(migrate)
        assert replacements == ["http://coop:81/~migrate/home/80/a.html", None]
        output, __ = template.splice_all(replacements)
        assert output == rewrite_html(source, migrate)

    def test_non_followable_current_value_skipped(self):
        # A span whose value became non-followable must not reach rewrite,
        # mirroring rewrite_links.
        template = LinkTemplate('<a href="#x">y</a>',
                                [LinkSpan(9, 11, "#x", "a", "href")])
        calls = []
        output, __ = template.splice(lambda v: calls.append(v))
        assert calls == []
        assert output == template.source
