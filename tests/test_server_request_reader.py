"""Request-read hardening: the worker-side incremental request reader."""

import socket

import pytest

from repro.errors import HTTPError
from repro.server.threaded import _read_request, _RequestReader


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    try:
        yield a, b
    finally:
        a.close()
        b.close()


def test_reads_single_request(pair):
    client, server = pair
    client.sendall(b"GET /x.html HTTP/1.0\r\nHost: h\r\n\r\n")
    request = _RequestReader(server).read_request()
    assert request.method == "GET"
    assert request.target == "/x.html"
    assert request.body == b""


def test_reads_body_by_content_length(pair):
    client, server = pair
    client.sendall(b"POST /x HTTP/1.0\r\nContent-Length: 5\r\n\r\nhello-EXTRA")
    reader = _RequestReader(server)
    request = reader.read_request()
    assert request.body == b"hello"
    # Bytes past the frame stay buffered for the next request.
    assert reader.buffered


def test_pipelined_requests_served_in_turn(pair):
    client, server = pair
    client.sendall(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n")
    reader = _RequestReader(server)
    assert reader.read_request().target == "/a"
    assert reader.buffered
    assert reader.read_request().target == "/b"
    assert not reader.buffered


def test_clean_eof_between_requests_returns_none(pair):
    client, server = pair
    client.close()
    assert _RequestReader(server).read_request() is None


def test_eof_mid_head_raises(pair):
    client, server = pair
    client.sendall(b"GET /x.html HTTP/1.0\r\nHost:")
    client.close()
    with pytest.raises(HTTPError):
        _RequestReader(server).read_request()


def test_truncated_body_raises_instead_of_short_request(pair):
    """Regression: a peer closing mid-body used to yield a silently
    truncated request; it must be rejected as malformed."""
    client, server = pair
    client.sendall(b"POST /x HTTP/1.0\r\nContent-Length: 100\r\n\r\npartial")
    client.close()
    with pytest.raises(HTTPError):
        _RequestReader(server).read_request()


def test_module_level_read_request_wrapper(pair):
    client, server = pair
    client.sendall(b"GET / HTTP/1.0\r\n\r\n")
    assert _read_request(server).target == "/"
    client.close()
    with pytest.raises(HTTPError):
        _read_request(server)
