"""Tests for the round-robin DNS and TCP-router baseline clusters."""

import pytest

from repro.baselines import RoundRobinDNSCluster, TCPRouterCluster
from repro.core.config import ServerConfig
from repro.datasets.synthetic import build_synthetic_site
from repro.sim.cluster import ClusterConfig


def quick_config(**kwargs):
    defaults = dict(servers=2, clients=12, duration=20.0,
                    sample_interval=5.0, seed=3,
                    server_config=ServerConfig().scaled(0.2))
    defaults.update(kwargs)
    return ClusterConfig(**defaults)


def site():
    return build_synthetic_site(pages=20, images=8, fanout=4, seed=5)


class TestRoundRobinDNS:
    def test_serves_traffic(self):
        result = RoundRobinDNSCluster(site(), quick_config()).run()
        assert result.client_stats.requests > 100
        assert result.steady_cps() > 0

    def test_load_spread_across_replicas(self):
        result = RoundRobinDNSCluster(site(), quick_config(clients=16),
                                      dns_ttl=2.0).run()
        served = [info["served"] for info in result.per_server.values()]
        assert min(served) > 0
        assert max(served) < sum(served)  # nobody serves everything

    def test_storage_is_n_copies(self):
        the_site = site()
        result = RoundRobinDNSCluster(the_site, quick_config(servers=4)).run()
        assert result.storage_bytes == 4 * the_site.stats.total_bytes

    def test_long_ttl_coarsens_balance(self):
        # With a TTL longer than the run every client sticks to one
        # replica; with few clients that is visibly coarser than short TTL.
        config = quick_config(clients=3, servers=3)
        sticky = RoundRobinDNSCluster(site(), config, dns_ttl=1e9).run()
        served = sorted(info["served"] for info in sticky.per_server.values())
        assert served[0] < served[-1] or served[0] > 0

    def test_scales_with_servers(self):
        small = RoundRobinDNSCluster(site(),
                                     quick_config(servers=1, clients=48)).run()
        large = RoundRobinDNSCluster(site(),
                                     quick_config(servers=4, clients=48)).run()
        assert large.steady_cps() > small.steady_cps() * 1.5


class TestTCPRouter:
    def test_serves_traffic(self):
        result = TCPRouterCluster(site(), quick_config()).run()
        assert result.client_stats.requests > 100
        assert result.steady_cps() > 0

    def test_backends_round_robin(self):
        result = TCPRouterCluster(site(), quick_config(clients=16)).run()
        served = [info["served"] for name, info in result.per_server.items()
                  if name.startswith("backend")]
        assert min(served) > 0
        # Round-robin is nearly perfectly even.
        assert max(served) - min(served) <= max(served) * 0.2 + 5

    def test_router_utilization_reported(self):
        result = TCPRouterCluster(site(), quick_config()).run()
        router = result.per_server["router"]
        assert 0.0 <= router["cpu_utilization"] <= 1.0
        assert 0.0 <= router["nic_utilization"] <= 1.0

    def test_router_caps_scaling(self):
        # Doubling backends cannot push aggregate BPS past the router NIC.
        big_site = build_synthetic_site(pages=20, images=8, fanout=4,
                                        page_bytes=30000, image_bytes=30000,
                                        seed=5)
        result = TCPRouterCluster(
            big_site, quick_config(servers=8, clients=100)).run()
        router_nic_capacity = result.series.peak_bps()
        assert router_nic_capacity <= 100e6 / 8 * 1.2  # ~12.5 MB/s + slack
