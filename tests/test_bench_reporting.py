"""Unit tests for table/series formatting."""

from repro.bench.reporting import format_series, format_table, sparkline


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(("name", "value"),
                            [("a", 1), ("bbbb", 22.5)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert len(lines) == 5

    def test_number_formatting(self):
        text = format_table(("v",), [(1234.5,), (0.123,), (12.34,)])
        assert "1,234" in text    # thousands separator, no decimals
        assert "0.123" in text
        assert "12.3" in text

    def test_empty_rows(self):
        text = format_table(("a", "b"), [])
        assert "a" in text

    def test_columns_line_up(self):
        text = format_table(("col", "x"), [("abc", 1), ("de", 22)])
        lines = text.splitlines()
        assert len(lines[1]) == len(lines[2]) == len(lines[3])


class TestFormatSeries:
    def test_rows_aligned(self):
        text = format_series("CPS", [0.0, 10.0, 20.0], [1.0, 250.0, 1000.0],
                             unit="conn/s")
        lines = text.splitlines()
        assert lines[0] == "CPS (conn/s)"
        assert lines[1].startswith("t:")
        assert lines[2].startswith("v:")
        assert len(lines[1]) == len(lines[2])


class TestSparkline:
    def test_shape(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(line) == 4
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_flat_series(self):
        assert sparkline([5.0, 5.0]) == "▁▁"

    def test_empty(self):
        assert sparkline([]) == ""
