"""Unit tests for the DCWS request engine."""

import pytest

from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.http.messages import Request
from repro.http.piggyback import LoadReport, extract_load_reports
from repro.server.engine import (
    DCWSEngine,
    EngineReply,
    PullFromHome,
    PURPOSE_HEADER,
    VERSION_HEADER,
)
from repro.server.filestore import MemoryStore

HOME = Location("home", 8001)
COOP = Location("coop", 8002)

SITE = {
    "/index.html": b'<html><a href="d.html">D</a><a href="e.html">E</a>'
                   b'<img src="i.gif"></html>',
    "/d.html": b'<html><a href="e.html">E</a></html>',
    "/e.html": b"<html>leaf</html>",
    "/i.gif": b"GIF89a" + b"x" * 100,
}


def make_engine(location=HOME, site=None, peers=(COOP,), **config_kwargs):
    config_kwargs.setdefault("stats_interval", 1.0)
    config_kwargs.setdefault("migration_hit_threshold", 1.0)
    config = ServerConfig(**config_kwargs)
    store = MemoryStore(site if site is not None else SITE)
    engine = DCWSEngine(location, config, store,
                        entry_points=["/index.html"] if site is None or
                        "/index.html" in (site or {}) else [],
                        peers=peers)
    engine.initialize(0.0)
    return engine


def get(engine, path, now=1.0, headers=None):
    request = Request(method="GET", target=path)
    if headers:
        for name, value in headers.items():
            request.headers.set(name, value)
    return engine.handle_request(request, now)


class TestInitialization:
    def test_graph_built_from_store(self):
        engine = make_engine()
        assert sorted(engine.graph.names()) == sorted(SITE)
        assert engine.graph.get("/index.html").entry_point

    def test_links_extracted(self):
        engine = make_engine()
        assert engine.graph.get("/index.html").link_to == \
            {"/d.html", "/e.html", "/i.gif"}
        assert engine.graph.get("/d.html").link_from == {"/index.html"}

    def test_initialize_idempotent(self):
        engine = make_engine()
        engine.initialize(5.0)
        assert len(engine.graph) == len(SITE)

    def test_peers_registered_in_glt(self):
        engine = make_engine()
        assert COOP in engine.glt


class TestLocalServing:
    def test_serves_document(self):
        reply = get(make_engine(), "/d.html")
        assert isinstance(reply, EngineReply)
        assert reply.response.status == 200
        assert reply.response.body == SITE["/d.html"]
        assert reply.response.headers.get("Content-Type") == "text/html"

    def test_head_returns_no_body(self):
        engine = make_engine()
        reply = engine.handle_request(Request(method="HEAD", target="/d.html"),
                                      1.0)
        assert reply.response.status == 200
        assert reply.response.body == b""
        # Content-Length still reflects the entity size.
        assert reply.response.headers.get_int("content-length") == \
            len(SITE["/d.html"])

    def test_404_for_unknown(self):
        reply = get(make_engine(), "/nope.html")
        assert reply.response.status == 404

    def test_hit_recorded(self):
        engine = make_engine()
        get(engine, "/d.html")
        assert engine.graph.get("/d.html").hits == 1

    def test_metrics_recorded(self):
        engine = make_engine()
        get(engine, "/d.html", now=1.0)
        assert engine.metrics.cps(1.0) > 0
        assert engine.stats.responses_200 == 1

    def test_version_header_served(self):
        reply = get(make_engine(), "/d.html")
        assert reply.response.headers.get(VERSION_HEADER) == "0"

    def test_path_normalized(self):
        reply = get(make_engine(), "/a/../d.html")
        assert reply.response.status == 200


class TestMigrationAndRedirect:
    def migrated_engine(self):
        engine = make_engine()
        engine.policy.force_migrate("/d.html", COOP, now=0.5)
        return engine

    def test_redirect_after_migration(self):
        engine = self.migrated_engine()
        reply = get(engine, "/d.html")
        assert reply.response.status == 301
        assert reply.response.headers.get("Location") == \
            "http://coop:8002/~migrate/home/8001/d.html"
        assert engine.stats.responses_301 == 1

    def test_pull_from_assigned_coop_gets_content_not_redirect(self):
        engine = self.migrated_engine()
        reply = get(engine, "/d.html",
                    headers={PURPOSE_HEADER: "migration-pull",
                             "X-DCWS-Sender": "coop:8002"})
        assert reply.response.status == 200
        # Links in the migrated document are absolutized.
        assert b"http://home:8001/e.html" in reply.response.body

    def test_validation_from_assigned_coop_gets_content(self):
        engine = self.migrated_engine()
        reply = get(engine, "/d.html",
                    headers={PURPOSE_HEADER: "validation",
                             "X-DCWS-Sender": "coop:8002"})
        assert reply.response.status == 200

    def test_unassigned_coop_gets_redirect(self):
        # A co-op that is no longer (or never was) the document's host is
        # answered 301, which tells it to drop any stale copy.
        engine = self.migrated_engine()
        reply = get(engine, "/d.html",
                    headers={PURPOSE_HEADER: "validation",
                             "X-DCWS-Sender": "other:9999"})
        assert reply.response.status == 301
        assert "coop:8002" in reply.response.headers.get("Location")

    def test_dirty_referrer_regenerated_on_serve(self):
        engine = self.migrated_engine()
        assert engine.graph.get("/index.html").dirty
        reply = get(engine, "/index.html")
        assert reply.reconstructed
        assert b"http://coop:8002/~migrate/home/8001/d.html" in \
            reply.response.body
        assert not engine.graph.get("/index.html").dirty
        # Untouched links stay absolute to home; unrelated image intact.
        assert b"i.gif" in reply.response.body

    def test_regeneration_happens_once(self):
        engine = self.migrated_engine()
        first = get(engine, "/index.html")
        second = get(engine, "/index.html")
        assert first.reconstructed and not second.reconstructed
        assert engine.stats.reconstructions == 1

    def test_revocation_rewrites_links_back(self):
        engine = self.migrated_engine()
        get(engine, "/index.html")  # regenerate with co-op link
        engine.policy.revoke("/d.html")
        reply = get(engine, "/index.html")
        assert reply.reconstructed
        assert b"~migrate" not in reply.response.body
        assert b"http://home:8001/d.html" in reply.response.body

    def test_migrated_form_url_for_own_document_serves_locally(self):
        engine = make_engine()
        reply = get(engine, "/~migrate/home/8001/d.html")
        assert reply.response.status == 200
        assert reply.response.body == SITE["/d.html"]

    def test_malformed_migrate_path_is_400(self):
        reply = get(make_engine(), "/~migrate/host")
        assert reply.response.status == 400


class TestCoopBehaviour:
    def coop_engine(self):
        return make_engine(location=COOP, site={}, peers=(HOME,))

    def test_first_request_returns_pull(self):
        engine = self.coop_engine()
        result = get(engine, "/~migrate/home/8001/d.html")
        assert isinstance(result, PullFromHome)
        assert result.home == HOME
        assert result.original == "/d.html"
        assert result.request.headers.get(PURPOSE_HEADER) == "migration-pull"
        assert engine.stats.pulls_started == 1

    def test_complete_pull_serves_and_caches(self):
        coop = self.coop_engine()
        home = make_engine()
        pull = get(coop, "/~migrate/home/8001/d.html")
        upstream = get(home, pull.request.target, now=1.1,
                       headers={PURPOSE_HEADER: "migration-pull"})
        reply = coop.complete_pull(pull, upstream.response, now=1.2)
        assert reply.response.status == 200
        assert reply.response.body == SITE["/d.html"]
        # Cached: the next request serves locally without a pull.
        second = get(coop, "/~migrate/home/8001/d.html", now=1.3)
        assert isinstance(second, EngineReply)
        assert second.response.status == 200

    def test_failed_pull_degrades_to_redirect_and_retries_later(self):
        coop = self.coop_engine()
        pull = get(coop, "/~migrate/home/8001/d.html")
        reply = coop.complete_pull(pull, None, now=1.2)
        # Graceful degradation: the client is bounced back to the home
        # (302, not permanent) instead of receiving a 5xx of our making.
        assert reply.response.status == 302
        assert reply.response.headers.get("Location") == \
            "http://home:8001/d.html"
        assert coop.stats.pulls_degraded == 1
        # The next request pulls again.
        again = get(coop, "/~migrate/home/8001/d.html", now=1.4)
        assert isinstance(again, PullFromHome)

    def test_failed_pull_with_home_down_sheds_with_retry_after(self):
        coop = self.coop_engine()
        pull = get(coop, "/~migrate/home/8001/d.html")
        reply = coop.complete_pull(pull, None, now=1.2, home_down=True)
        assert reply.response.status == 503
        assert reply.response.headers.get("Retry-After") is not None
        assert coop.stats.responses_503 == 1

    def test_failed_pulls_feed_health_and_declare_home_dead(self):
        coop = self.coop_engine()
        limit = coop.config.ping_failure_limit
        for i in range(limit):
            pull = get(coop, "/~migrate/home/8001/d.html", now=1.0 + i)
            assert isinstance(pull, PullFromHome)
            coop.complete_pull(pull, None, now=1.1 + i)
        assert coop.log.count("peer_dead") == 1

    def test_dead_declaration_forces_the_breaker_open(self):
        """Regression: declaring a peer dead used to *forget* its breaker
        state, so data-path failures reset the trip counter every
        ``ping_failure_limit`` failures and the circuit never opened."""
        from repro.client.breaker import CircuitBreaker

        coop = self.coop_engine()
        coop.breaker = CircuitBreaker(failure_threshold=100, jitter=0.0,
                                      clock=lambda: 1.0)
        limit = coop.config.ping_failure_limit
        for i in range(limit):
            pull = get(coop, "/~migrate/home/8001/d.html", now=1.0 + i)
            coop.complete_pull(pull, None, now=1.1 + i)
        # The breaker itself never reached its own threshold, but death
        # trips it: subsequent traffic toward home fast-fails.
        assert coop.breaker.is_open("home:8001")

    def test_pull_propagates_home_404(self):
        coop = self.coop_engine()
        home = make_engine()
        pull = get(coop, "/~migrate/home/8001/ghost.html")
        upstream = get(home, "/ghost.html")
        reply = coop.complete_pull(pull, upstream.response, now=1.2)
        assert reply.response.status == 404

    def test_hosted_hits_counted(self):
        coop = self.coop_engine()
        home = make_engine()
        pull = get(coop, "/~migrate/home/8001/d.html")
        upstream = get(home, pull.request.target, now=1.1,
                       headers={PURPOSE_HEADER: "migration-pull"})
        coop.complete_pull(pull, upstream.response, 1.2)
        get(coop, "/~migrate/home/8001/d.html", now=1.3)
        hosted = coop.hosted["/~migrate/home/8001/d.html"]
        assert hosted.hits == 2
        assert hosted.fetched


class TestPiggybacking:
    def test_peer_request_carries_table_back(self):
        engine = make_engine()
        engine.glt.update_own(42.0, 0.9)
        reply = get(engine, "/d.html",
                    headers={"X-DCWS-Sender": "coop:8002"})
        reports = extract_load_reports(reply.response.headers)
        assert any(r.server == "home:8001" and r.metric == 42.0
                   for r in reports)

    def test_plain_client_gets_no_piggyback(self):
        reply = get(make_engine(), "/d.html")
        assert extract_load_reports(reply.response.headers) == []

    def test_incoming_reports_merged(self):
        engine = make_engine()
        report = LoadReport(server="coop:8002", metric=7.0, timestamp=5.0)
        get(engine, "/d.html", headers={
            "X-DCWS-Sender": "coop:8002",
            "X-DCWS-Load": report.encode()})
        assert engine.glt.get(COOP).metric == 7.0

    def test_malformed_gossip_ignored(self):
        engine = make_engine()
        reply = get(engine, "/d.html", headers={
            "X-DCWS-Sender": "coop:8002",
            "X-DCWS-Load": "garbage"})
        assert reply.response.status == 200


class TestTick:
    def test_stats_interval_updates_own_row(self):
        engine = make_engine()
        get(engine, "/d.html", now=1.0)
        engine.tick(1.1)
        own = engine.glt.get(HOME)
        assert own is not None and own.metric > 0

    def test_migration_decision_from_tick(self):
        engine = make_engine()
        for index in range(30):
            get(engine, "/d.html", now=1.0 + index * 0.001)
        engine.glt.observe(LoadReport("coop:8002", 0.0, 0.9))
        engine.tick(1.5)
        assert engine.stats.migrations == 1
        assert engine.graph.get("/d.html").location == COOP

    def test_window_hits_reset_after_tick(self):
        engine = make_engine()
        get(engine, "/d.html", now=0.5)
        engine.tick(1.5)
        assert engine.graph.get("/d.html").window_hits == 0
        assert engine.graph.get("/d.html").hits == 1

    def test_pinger_probes_stale_peer(self):
        engine = make_engine(pinger_interval=2.0)
        actions = engine.tick(10.0)
        pings = [a for a in actions if a.kind == "ping"]
        assert pings and pings[0].peer == COOP
        assert pings[0].request.method == "HEAD"

    def test_fresh_peer_not_pinged(self):
        engine = make_engine(pinger_interval=2.0)
        engine.glt.observe(LoadReport("coop:8002", 1.0, 9.9))
        actions = engine.tick(10.0)
        assert [a for a in actions if a.kind == "ping"] == []

    def test_dead_peer_triggers_revocation(self):
        engine = make_engine(ping_failure_limit=2, pinger_interval=1.0)
        engine.policy.force_migrate("/d.html", COOP, now=0.5)
        for round_number in range(2):
            actions = engine.tick(5.0 + round_number * 10)
            for action in actions:
                if action.kind == "ping":
                    engine.complete_action(action, None, 5.1)
        assert engine.graph.get("/d.html").location == HOME
        assert COOP not in engine.glt


class TestValidation:
    def hosted_coop(self, validation_interval=5.0):
        coop = make_engine(location=COOP, site={}, peers=(HOME,),
                           validation_interval=validation_interval)
        home = make_engine()
        pull = get(coop, "/~migrate/home/8001/d.html")
        upstream = get(home, pull.request.target, now=1.0,
                       headers={PURPOSE_HEADER: "migration-pull"})
        coop.complete_pull(pull, upstream.response, 1.0)
        return coop, home

    def test_validation_scheduled_and_due(self):
        coop, __ = self.hosted_coop(validation_interval=5.0)
        actions = coop.tick(20.0)
        validations = [a for a in actions if a.kind == "validate"]
        assert validations
        assert validations[0].request.headers.get(PURPOSE_HEADER) == \
            "validation"
        assert validations[0].request.headers.get(VERSION_HEADER) is not None

    def test_unchanged_document_gets_304(self):
        coop, home = self.hosted_coop()
        actions = [a for a in coop.tick(30.0) if a.kind == "validate"]
        response = get(home, actions[0].request.target, now=30.0, headers={
            PURPOSE_HEADER: "validation",
            VERSION_HEADER: actions[0].request.headers.get(VERSION_HEADER),
        }).response
        assert response.status == 304

    def test_changed_document_refreshed(self):
        coop, home = self.hosted_coop()
        home.update_document("/d.html", b"<html>new content</html>")
        actions = [a for a in coop.tick(30.0) if a.kind == "validate"]
        response = get(home, "/d.html", now=30.0, headers={
            PURPOSE_HEADER: "validation",
            VERSION_HEADER: actions[0].request.headers.get(VERSION_HEADER),
        }).response
        assert response.status == 200
        coop.complete_action(actions[0], response, 30.1)
        key = "/~migrate/home/8001/d.html"
        assert coop.store.get(key) == response.body

    def test_home_404_drops_hosted_copy(self):
        coop, home = self.hosted_coop()
        actions = [a for a in coop.tick(30.0) if a.kind == "validate"]
        response = get(home, "/ghost.html").response  # a 404
        coop.complete_action(actions[0], response, 30.1)
        assert "/~migrate/home/8001/d.html" not in coop.hosted

    def test_transient_503_keeps_copy(self):
        from repro.http.messages import error_response

        coop, __ = self.hosted_coop()
        actions = [a for a in coop.tick(30.0) if a.kind == "validate"]
        coop.complete_action(actions[0], error_response(503), 30.1)
        assert "/~migrate/home/8001/d.html" in coop.hosted


class TestContentAdministration:
    def test_update_document_bumps_version_and_relinks(self):
        engine = make_engine()
        engine.update_document("/d.html",
                               b'<html><a href="i.gif">img</a></html>')
        record = engine.graph.get("/d.html")
        assert record.version == 1
        assert record.link_to == {"/i.gif"}
        assert record.dirty

    def test_update_unknown_document_raises(self):
        from repro.errors import DocumentNotFound

        with pytest.raises(DocumentNotFound):
            make_engine().update_document("/new.html", b"x")

    def test_describe(self):
        engine = make_engine()
        info = engine.describe()
        assert info["documents"] == len(SITE)
        assert info["location"] == "home:8001"


class TestReplicationServing:
    def test_redirect_spreads_across_replicas(self):
        engine = make_engine(max_replicas=3)
        coop2 = Location("coop2", 8003)
        engine.glt.register(coop2)
        engine.graph.add_replica("/d.html", COOP)
        engine.graph.add_replica("/d.html", coop2)
        locations = set()
        for index in range(40):
            reply = get(engine, f"/d.html?r={index}")
            locations.add(reply.response.headers.get("Location"))
        assert len(locations) == 2  # both replicas are used
