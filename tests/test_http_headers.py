"""Unit tests for the case-insensitive HTTP header multimap."""

import pytest

from repro.errors import HTTPError
from repro.http.headers import Headers


class TestAddGet:
    def test_get_is_case_insensitive(self):
        headers = Headers()
        headers.add("Content-Type", "text/html")
        assert headers.get("content-type") == "text/html"
        assert headers.get("CONTENT-TYPE") == "text/html"

    def test_get_missing_returns_default(self):
        assert Headers().get("X-Missing") is None
        assert Headers().get("X-Missing", "d") == "d"

    def test_add_preserves_multiple_values(self):
        headers = Headers()
        headers.add("X-DCWS-Load", "a")
        headers.add("X-DCWS-Load", "b")
        assert headers.get_all("x-dcws-load") == ["a", "b"]

    def test_get_returns_first_value(self):
        headers = Headers([("X", "1"), ("X", "2")])
        assert headers.get("x") == "1"

    def test_add_strips_value_whitespace(self):
        headers = Headers()
        headers.add("Host", "  example  ")
        assert headers.get("host") == "example"

    def test_add_rejects_invalid_name(self):
        with pytest.raises(HTTPError):
            Headers().add("Bad Name", "x")
        with pytest.raises(HTTPError):
            Headers().add("", "x")
        with pytest.raises(HTTPError):
            Headers().add("a:b", "x")

    def test_add_rejects_value_with_newline(self):
        with pytest.raises(HTTPError):
            Headers().add("X", "a\r\nEvil: yes")

    def test_non_string_value_coerced(self):
        headers = Headers()
        headers.add("Content-Length", 42)
        assert headers.get("content-length") == "42"


class TestSetRemove:
    def test_set_replaces_all_values(self):
        headers = Headers([("X", "1"), ("X", "2")])
        headers.set("x", "3")
        assert headers.get_all("X") == ["3"]

    def test_remove_returns_count(self):
        headers = Headers([("X", "1"), ("X", "2"), ("Y", "3")])
        assert headers.remove("x") == 2
        assert headers.remove("x") == 0
        assert len(headers) == 1

    def test_contains(self):
        headers = Headers([("Host", "h")])
        assert "host" in headers
        assert "HOST" in headers
        assert "absent" not in headers
        assert 42 not in headers


class TestIntParsing:
    def test_get_int(self):
        headers = Headers([("Content-Length", "17")])
        assert headers.get_int("content-length") == 17

    def test_get_int_default(self):
        assert Headers().get_int("content-length") is None
        assert Headers().get_int("content-length", 0) == 0

    def test_get_int_malformed_raises(self):
        headers = Headers([("Content-Length", "abc")])
        with pytest.raises(HTTPError):
            headers.get_int("content-length")

    @pytest.mark.parametrize("value", ["+5", "-5", "1_0", "0x10", "4.2",
                                       "5³", "١٢"])
    def test_get_int_is_strict_ascii_digits(self, value):
        # bare int() accepts signs, underscores and non-ASCII digits —
        # framing-relevant divergence other servers reject.
        headers = Headers([("Content-Length", value)])
        with pytest.raises(HTTPError):
            headers.get_int("content-length")

    def test_get_int_leading_zeros_accepted(self):
        assert Headers([("X-N", "007")]).get_int("x-n") == 7


class TestSerializeParse:
    def test_serialize_round_trip(self):
        headers = Headers([("Host", "example"), ("X-A", "1"), ("X-A", "2")])
        wire = headers.serialize()
        parsed = Headers.parse_lines(wire.split("\r\n"))
        assert parsed == headers

    def test_serialize_format(self):
        headers = Headers([("Host", "h")])
        assert headers.serialize() == "Host: h\r\n"

    def test_parse_lines_handles_continuation(self):
        parsed = Headers.parse_lines(["X-Long: part one", "\tpart two"])
        assert parsed.get("x-long") == "part one part two"

    def test_parse_lines_rejects_orphan_continuation(self):
        with pytest.raises(HTTPError):
            Headers.parse_lines(["  leading continuation"])

    def test_parse_lines_rejects_missing_colon(self):
        with pytest.raises(HTTPError):
            Headers.parse_lines(["NoColonHere"])

    def test_parse_lines_skips_blank_lines(self):
        parsed = Headers.parse_lines(["A: 1", "", "B: 2"])
        assert parsed.get("a") == "1"
        assert parsed.get("b") == "2"

    @pytest.mark.parametrize("line", ["Content-Length : 5",
                                      "Content-Length\t: 5",
                                      "Host  : h"])
    def test_parse_lines_rejects_space_before_colon(self, line):
        # RFC 7230 section 3.2.4: whitespace between field name and colon
        # must be rejected — proxies disagree on whether "Content-Length "
        # names Content-Length, which is a smuggling ambiguity.
        with pytest.raises(HTTPError):
            Headers.parse_lines([line])


class TestEquality:
    def test_equality_ignores_name_case(self):
        assert Headers([("HOST", "h")]) == Headers([("host", "h")])

    def test_inequality_on_value(self):
        assert Headers([("a", "1")]) != Headers([("a", "2")])

    def test_copy_is_independent(self):
        original = Headers([("a", "1")])
        duplicate = original.copy()
        duplicate.set("a", "2")
        assert original.get("a") == "1"
