"""Unit tests for access-log synthesis and parsing."""

import pytest

from repro.datasets.logs import (
    LogRecord,
    generate_access_log,
    parse_clf,
    site_link_graph,
    trace_statistics,
)
from repro.datasets.synthetic import build_synthetic_site


@pytest.fixture(scope="module")
def site():
    return build_synthetic_site(pages=15, images=5, fanout=3, seed=4)


@pytest.fixture(scope="module")
def trace(site):
    return generate_access_log(site, duration=60.0,
                               sequences_per_second=1.0, seed=2)


class TestGeneration:
    def test_records_sorted_by_time(self, trace):
        times = [record.time for record in trace]
        assert times == sorted(times)

    def test_every_path_exists_on_site(self, site, trace):
        for record in trace:
            assert record.path in site.documents

    def test_first_request_of_each_client_is_an_entry(self, site, trace):
        seen = set()
        for record in trace:
            if record.client not in seen:
                seen.add(record.client)
                if record.path.endswith(".html"):
                    assert record.path in site.entry_points

    def test_deterministic(self, site):
        first = generate_access_log(site, duration=30.0, seed=9)
        second = generate_access_log(site, duration=30.0, seed=9)
        assert first == second

    def test_sequences_respect_duration(self, trace):
        __, __, span = trace_statistics(trace)
        # Walks may run past the arrival cutoff, but not unboundedly.
        assert span < 60.0 + 25 * 3.0

    def test_statistics(self, trace):
        requests, clients, span = trace_statistics(trace)
        assert requests == len(trace)
        assert clients > 10
        assert trace_statistics([]) == (0, 0, 0.0)


class TestLinkGraph:
    def test_graph_matches_site(self, site):
        graph = site_link_graph(site)
        assert set(graph) == set(site.documents)
        for name, targets in graph.items():
            for target in targets:
                assert target in site.documents

    def test_images_have_no_outlinks(self, site):
        graph = site_link_graph(site)
        for name in site.documents:
            if name.endswith(".gif"):
                assert graph[name] == []


class TestCLF:
    def test_round_trip(self):
        record = LogRecord(time=75.0, client="10.0.0.1",
                           path="/a/b.html", status=200, size=1234)
        parsed = parse_clf([record.to_clf()])
        assert len(parsed) == 1
        assert parsed[0].client == "10.0.0.1"
        assert parsed[0].path == "/a/b.html"
        assert parsed[0].status == 200
        assert parsed[0].size == 1234

    def test_parse_real_world_line(self):
        line = ('marlin.cs.arizona.edu - - [01/Aug/1998:12:00:01 -0700] '
                '"GET /dcws/index.html HTTP/1.0" 200 5918')
        parsed = parse_clf([line])
        assert parsed[0].path == "/dcws/index.html"

    def test_dash_size(self):
        line = ('a - - [01/Aug/1998:12:00:01 -0700] '
                '"GET /x HTTP/1.0" 304 -')
        assert parse_clf([line])[0].size == 0

    def test_garbage_skipped(self):
        assert parse_clf(["not a log line", ""]) == []

    def test_synthetic_times_monotonic(self):
        lines = [LogRecord(0, "c", f"/p{i}").to_clf() for i in range(5)]
        parsed = parse_clf(lines)
        times = [record.time for record in parsed]
        assert times == sorted(times)
