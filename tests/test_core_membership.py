"""Unit tests for the adaptive membership subsystem.

The detector tests drive :class:`AccrualFailureDetector` with seeded
jittered heartbeat traces — the traffic shape a real pinger produces —
and assert the two properties the fixed ``failure_limit`` scheme could
not give simultaneously: jitter alone never kills a peer, and true
silence is detected within a bounded multiple of the learned cadence.
"""

import random

import pytest

from repro.core.config import ServerConfig
from repro.core.membership import (ALIVE, DEAD, FORGOTTEN,
                                   AccrualFailureDetector, MembershipTable,
                                   SUSPECT)


def jittered_trace(interval: float, jitter: float, count: int,
                   seed: int) -> list:
    """Arrival times of *count* heartbeats at *interval* ± *jitter*."""
    rng = random.Random(seed)
    now, times = 0.0, []
    for _ in range(count):
        now += interval * (1.0 + rng.uniform(-jitter, jitter))
        times.append(now)
    return times


class TestAccrualFailureDetector:
    def test_bootstrap_scores_zero(self):
        detector = AccrualFailureDetector(min_samples=3)
        detector.heartbeat("p", 0.0)
        detector.heartbeat("p", 1.0)
        # one interval observed < min_samples: silence is not evidence
        assert detector.phi("p", 100.0) == 0.0
        assert detector.interval_scale("p") is None

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_no_false_positive_under_pure_jitter(self, seed):
        """At 3x the ping interval of nothing but jitter, phi must stay
        below any reasonable dead threshold (the acceptance bar)."""
        detector = AccrualFailureDetector(floor=1.0)
        trace = jittered_trace(1.0, 0.25, 60, seed)
        for t in trace:
            detector.heartbeat("p", t)
        phi = detector.phi("p", trace[-1] + 3.0)
        assert phi < 4.0, f"seed {seed}: phi {phi} would false-kill"

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_bounded_detection_under_true_silence(self, seed):
        """A truly silent peer must cross dead_phi within a bounded
        multiple of its learned cadence (here: 8 scale units ~= well
        under 20 intervals for this trace shape)."""
        detector = AccrualFailureDetector(floor=1.0)
        trace = jittered_trace(1.0, 0.25, 60, seed)
        for t in trace:
            detector.heartbeat("p", t)
        scale = detector.interval_scale("p")
        deadline = trace[-1] + 8.0 * scale * 2.303  # phi 8 crossing
        assert detector.phi("p", deadline + 0.001) >= 8.0
        assert deadline - trace[-1] < 30.0  # bounded in wall terms too

    def test_floor_prevents_fast_traffic_shrinking_model(self):
        """A burst of per-millisecond data-path successes must not let a
        quiet second look like death when heartbeats are only promised
        once per second (the floor is the pinger interval)."""
        detector = AccrualFailureDetector(floor=1.0)
        now = 0.0
        for _ in range(50):
            now += 0.001
            detector.heartbeat("p", now)
        assert detector.interval_scale("p") == 1.0
        # 2 s of silence after the burst: barely suspicious, not dead.
        assert detector.phi("p", now + 2.0) < 1.0

    def test_same_instant_heartbeats_record_no_zero_interval(self):
        detector = AccrualFailureDetector(floor=0.1)
        for t in (0.0, 1.0, 1.0, 1.0, 2.0, 3.0):
            detector.heartbeat("p", t)
        assert detector.interval_scale("p") == 1.0

    def test_forget_drops_history(self):
        detector = AccrualFailureDetector()
        for t in (0.0, 1.0, 2.0, 3.0):
            detector.heartbeat("p", t)
        detector.forget("p")
        assert detector.phi("p", 100.0) == 0.0
        assert detector.last_arrival("p") is None


def table(**kwargs) -> MembershipTable:
    defaults = dict(suspect_phi=2.0, dead_phi=8.0, failure_limit=3,
                    reprobe_interval=5.0, reprobe_max_interval=60.0,
                    detector=AccrualFailureDetector(floor=1.0))
    defaults.update(kwargs)
    return MembershipTable(**defaults)


def warm(t: MembershipTable, peer: str, count: int = 10,
         interval: float = 1.0, start: float = 0.0) -> float:
    now = start
    for _ in range(count):
        t.heartbeat(peer, now)
        now += interval
    return now - interval


class TestMembershipStateMachine:
    def test_unknown_peer_is_alive(self):
        assert table().state("stranger") == ALIVE

    def test_silence_degrades_to_suspect_before_dead(self):
        t = table()
        last = warm(t, "p")
        # phi crosses suspect_phi=2 at ~2 scale units of silence
        transitions, deaths = t.sweep(last + 5.0)
        assert ("p", ALIVE, SUSPECT) in transitions
        assert deaths == []
        assert t.is_suspect("p")

    def test_sweep_recommends_death_but_does_not_apply(self):
        t = table()
        last = warm(t, "p")
        t.sweep(last + 5.0)            # -> suspect
        _, deaths = t.sweep(last + 100.0)
        assert deaths == ["p"]
        assert not t.is_dead("p")      # recommendation only
        assert t.mark_dead("p", last + 100.0)
        assert t.is_dead("p")

    def test_suspect_recovers_to_alive_without_dying(self):
        t = table()
        last = warm(t, "p")
        t.sweep(last + 5.0)
        assert t.is_suspect("p")
        assert t.heartbeat("p", last + 6.0) == (SUSPECT, ALIVE)
        assert t.state("p") == ALIVE
        assert t.counters.deaths == 0
        assert t.counters.rediscoveries == 0  # never died: not a rediscovery

    def test_explicit_failures_escalate_faster_than_silence(self):
        t = table(failure_limit=3)
        warm(t, "p")
        assert t.failure("p", 10.0) == SUSPECT
        assert t.failure("p", 10.1) is None
        assert t.failure("p", 10.2) == DEAD   # recommended, unapplied
        assert not t.is_dead("p")

    def test_mark_dead_is_idempotent(self):
        t = table()
        assert t.mark_dead("p", 1.0) is True
        assert t.mark_dead("p", 2.0) is False   # the double-declare guard
        assert t.counters.deaths == 1

    def test_failure_against_dead_peer_is_absorbed(self):
        t = table(failure_limit=1)
        t.mark_dead("p", 1.0)
        assert t.failure("p", 2.0) is None

    def test_success_clears_failure_streak(self):
        t = table(failure_limit=3)
        t.failure("p", 1.0)
        t.failure("p", 1.1)
        t.heartbeat("p", 1.2)
        assert t.failure("p", 1.3) == SUSPECT  # streak restarted
        assert t.failure("p", 1.4) is None

    def test_dead_ages_to_forgotten(self):
        t = table(forget_after=100.0)
        t.mark_dead("p", 0.0)
        transitions, _ = t.sweep(100.0)
        assert ("p", DEAD, FORGOTTEN) in transitions
        assert t.state("p") == FORGOTTEN

    def test_rejoin_counts_rediscovery(self):
        t = table()
        t.mark_dead("p", 0.0)
        assert t.heartbeat("p", 5.0) == (DEAD, ALIVE)
        assert t.counters.rediscoveries == 1


class TestRediscoverySchedule:
    def test_only_configured_peers_are_probed(self):
        t = table()
        t.register("cfg", configured=True)
        t.register("gossip")
        t.mark_dead("cfg", 0.0)
        t.mark_dead("gossip", 0.0)
        assert t.due_probes(1000.0) == ["cfg"]
        assert t.reprobe_backlog() == 1

    def test_backoff_grows_exponentially_to_cap(self):
        t = table(reprobe_interval=5.0, reprobe_backoff=2.0,
                  reprobe_max_interval=60.0, reprobe_jitter=0.0)
        periods = [t._backoff("p", n) for n in range(6)]
        assert periods == [5.0, 10.0, 20.0, 40.0, 60.0, 60.0]

    def test_jitter_is_deterministic_per_seed(self):
        a = table(seed=1, reprobe_jitter=0.2)
        b = table(seed=1, reprobe_jitter=0.2)
        c = table(seed=2, reprobe_jitter=0.2)
        assert a._backoff("p", 2) == b._backoff("p", 2)
        assert a._backoff("p", 2) != c._backoff("p", 2)

    def test_probe_not_due_before_backoff_elapses(self):
        t = table(reprobe_interval=5.0, reprobe_jitter=0.0)
        t.register("p", configured=True)
        t.mark_dead("p", 0.0)
        assert t.due_probes(4.9) == []
        assert t.due_probes(5.0) == ["p"]

    def test_pending_probe_is_not_duplicated(self):
        t = table(reprobe_interval=5.0, reprobe_jitter=0.0)
        t.register("p", configured=True)
        t.mark_dead("p", 0.0)
        t.probe_sent("p", 5.0)
        assert t.due_probes(1000.0) == []       # slot closed while in flight
        t.probe_failed("p", 15.0)
        assert t.due_probes(15.0) == ["p"]      # backed-off slot reopened

    def test_heartbeat_clears_probe_state(self):
        t = table()
        t.register("p", configured=True)
        t.mark_dead("p", 0.0)
        t.probe_sent("p", 5.0)
        t.heartbeat("p", 6.0)
        assert t.reprobe_backlog() == 0
        assert t.due_probes(1000.0) == []
        assert t.reprobe_period("p") == 0.0


class TestInstallAndSnapshot:
    def test_install_is_idempotent_for_replay(self):
        t = table()
        t.install("p", DEAD, 1.0)
        t.install("p", DEAD, 2.0)
        assert t.state("p") == DEAD
        assert t.counters.deaths == 0   # replay must not inflate counters

    def test_snapshot_round_trip_keeps_non_alive_rows(self):
        t = table()
        t.register("a", configured=True)
        t.mark_dead("a", 1.0)
        t.install("b", SUSPECT, 2.0)
        rows = t.snapshot()
        assert {r["peer"] for r in rows} == {"a", "b"}
        fresh = table()
        fresh.restore(rows, now=10.0)
        assert fresh.state("a") == DEAD
        assert fresh.state("b") == SUSPECT

    def test_from_config_floors_at_pinger_interval(self):
        config = ServerConfig(pinger_interval=7.0, membership_floor=0.1)
        t = MembershipTable.from_config(config)
        assert t.detector.floor == 7.0
