"""Multi-process front end: supervisor, workers, forwarding, respawn."""

import base64
import os
import signal
import socket
import threading
import time

import pytest

from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.errors import ReproError
from repro.http.messages import Request, Response, parse_response
from repro.server.engine import DCWSEngine
from repro.server.filestore import MemoryStore
from repro.server.multiproc import (
    MODE_ENV,
    WorkerSupervisor,
    _Channel,
    _WorkerHost,
    choose_mode,
)
from repro.server.striping import shard_of

SITE = {f"/doc{i}.html": (b"<html>" + bytes([65 + i % 26]) * 400
                          + b"</html>")
        for i in range(20)}
SITE["/index.html"] = b"<html>index</html>"


def engine_factory(index, location):
    config = ServerConfig(stats_interval=1000.0)
    return DCWSEngine(location, config, MemoryStore(dict(SITE)),
                      entry_points=[])


def fetch(port, path, timeout=5.0):
    with socket.create_connection(("127.0.0.1", port),
                                  timeout=timeout) as sock:
        sock.sendall(f"GET {path} HTTP/1.1\r\nHost: x\r\n"
                     f"Connection: close\r\n\r\n".encode())
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    return data


def status_of(wire):
    return int(wire.split(b" ", 2)[1])


class TestChooseMode:
    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv(MODE_ENV, "fd-handoff")
        assert choose_mode() == "fd-handoff"
        monkeypatch.setenv(MODE_ENV, "reuseport")
        assert choose_mode() == "reuseport"
        monkeypatch.setenv(MODE_ENV, "none")
        assert choose_mode() is None

    def test_platform_default(self, monkeypatch):
        monkeypatch.delenv(MODE_ENV, raising=False)
        mode = choose_mode()
        if hasattr(socket, "SO_REUSEPORT"):
            assert mode == "reuseport"
        else:
            assert mode in ("fd-handoff", None)


class TestSupervisorValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(ReproError):
            WorkerSupervisor(engine_factory, 0)

    def test_rejects_unavailable_mode(self, monkeypatch):
        monkeypatch.setenv(MODE_ENV, "none")
        with pytest.raises(ReproError):
            WorkerSupervisor(engine_factory, 2)


@pytest.mark.skipif(not hasattr(socket, "SO_REUSEPORT"),
                    reason="no SO_REUSEPORT on this platform")
class TestReuseportCluster:
    def test_two_workers_serve_and_report(self):
        with WorkerSupervisor(engine_factory, 2, port=0,
                              mode="reuseport") as sup:
            assert sup.mode == "reuseport"
            for i in range(10):
                wire = fetch(sup.port, f"/doc{i}.html")
                assert status_of(wire) == 200
                assert SITE[f"/doc{i}.html"] in wire
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                totals = sup.aggregate_stats()
                if totals["requests"] >= 10:
                    break
                time.sleep(0.1)
            assert sup.aggregate_stats()["requests"] >= 10
            view = sup.cluster_view()
            assert sorted(view["workers"]) == ["0", "1"]
            owned = [s for row in view["workers"].values()
                     for s in row["shards"]]
            assert sorted(owned) == list(range(view["stripes"]))

    def test_workers_admin_endpoint(self):
        with WorkerSupervisor(engine_factory, 2, port=0,
                              mode="reuseport") as sup:
            fetch(sup.port, "/index.html")
            deadline = time.monotonic() + 5
            body = b""
            while time.monotonic() < deadline:
                body = fetch(sup.port, "/~dcws/workers")
                if b"mode reuseport" in body:
                    break
                time.sleep(0.2)
            assert status_of(body) == 200
            text = body.decode(errors="replace")
            assert "roster 0 1" in text
            assert "mode reuseport" in text
            assert "Shards" in text

    def test_sigkill_worker_respawns(self):
        with WorkerSupervisor(engine_factory, 2, port=0,
                              mode="reuseport") as sup:
            victim = sup._procs[0].process.pid
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if sup.respawns >= 1 and all(p.alive for p in sup._procs):
                    break
                time.sleep(0.1)
            assert sup.respawns >= 1
            assert all(p.alive for p in sup._procs)
            assert sup._procs[0].process.pid != victim
            for i in range(10):
                assert status_of(fetch(sup.port, f"/doc{i}.html")) == 200


@pytest.mark.skipif(not hasattr(socket, "send_fds"),
                    reason="no fd passing on this platform")
class TestFdHandoffCluster:
    def test_fd_handoff_serves(self):
        with WorkerSupervisor(engine_factory, 2, port=0,
                              mode="fd-handoff") as sup:
            assert sup.mode == "fd-handoff"
            for i in range(10):
                wire = fetch(sup.port, f"/doc{i}.html")
                assert status_of(wire) == 200
                assert SITE[f"/doc{i}.html"] in wire

    def test_env_override_selects_fd_handoff(self, monkeypatch):
        monkeypatch.setenv(MODE_ENV, "fd-handoff")
        with WorkerSupervisor(engine_factory, 2, port=0) as sup:
            assert sup.mode == "fd-handoff"
            assert status_of(fetch(sup.port, "/index.html")) == 200


class TestWorkerHostUnits:
    """In-process `_WorkerHost` pieces, no forking involved."""

    def _host(self, worker_index=0, request_timeout=2.0):
        ours, theirs = socket.socketpair()
        engine = engine_factory(worker_index, Location("127.0.0.1", 0))
        engine.initialize(0.0)
        host = _WorkerHost(engine, channel=_Channel(ours),
                           worker_index=worker_index,
                           request_timeout=request_timeout)
        return host, _Channel(theirs)

    def test_owner_mapping_follows_roster(self):
        host, peer = self._host()
        host.handle_message({"kind": "roster", "workers": [0, 1, 2]})
        stripes = host.engine.config.lock_stripes
        for name in SITE:
            shard = shard_of(name, stripes)
            assert host._owner_of(name) == [0, 1, 2][shard % 3]
        host.handle_message({"kind": "roster", "workers": [1]})
        assert all(host._owner_of(name) == 1 for name in SITE)

    def test_forward_round_trip(self):
        host, peer = self._host()
        request = Request(method="GET", target="/doc1.html")
        expected = Response(status=200, body=b"forwarded-body")

        def owner_side():
            message = peer.recv()
            assert message["kind"] == "forward"
            assert message["name"] == "/doc1.html"
            peer.send({"kind": "forward-reply", "id": message["id"],
                       "response": base64.b64encode(
                           expected.serialize()).decode()})

        relay = threading.Thread(target=owner_side, daemon=True)
        relay.start()

        def pump():
            message = host.channel.recv()
            host.handle_message(message)

        pump_thread = threading.Thread(target=pump, daemon=True)
        # The host writes the forward onto its channel; the "supervisor"
        # (peer) answers; the host's reader applies the reply.
        forwarded = {}

        def run_forward():
            forwarded["response"] = host._forward_request("/doc1.html",
                                                          request)

        worker = threading.Thread(target=run_forward, daemon=True)
        worker.start()
        relay.join(5.0)
        pump_thread.start()
        pump_thread.join(5.0)
        worker.join(5.0)
        response = forwarded["response"]
        assert response is not None
        assert response.status == 200
        assert response.body == b"forwarded-body"

    def test_forward_timeout_returns_none(self):
        host, peer = self._host(request_timeout=0.2)
        request = Request(method="GET", target="/doc1.html")
        start = time.monotonic()
        assert host._forward_request("/doc1.html", request) is None
        assert time.monotonic() - start < 2.0
        assert not host._forward_waiters  # no leak

    def test_forward_null_reply_means_execute_locally(self):
        host, peer = self._host()
        request = Request(method="GET", target="/doc1.html")

        def relay():
            message = peer.recv()
            peer.send({"kind": "forward-reply", "id": message["id"],
                       "response": None})
            reply = host.channel.recv()
            host.handle_message(reply)

        threading.Thread(target=relay, daemon=True).start()
        assert host._forward_request("/doc1.html", request) is None

    def test_invalidation_applies_and_bumps_shard(self):
        host, peer = self._host()
        engine = host.engine
        request = Request(method="GET", target="/doc2.html")
        engine.handle_request(request, 1.0)  # populate response cache
        shard = shard_of("/doc2.html", engine.config.lock_stripes)
        before = engine.shards.read(shard)
        host._apply_invalidations(["/doc2.html"])
        after = engine.shards.read(shard)
        assert after is not None and after > before
        # A fast lookup right after an invalidation misses (cache empty).
        assert engine.fast_lookup(request, 2.0) is None

    def test_local_invalidations_batch_for_broadcast(self):
        host, peer = self._host()
        engine = host.engine
        engine.response_cache.on_invalidate("/doc3.html")
        with host._invalidation_lock:
            assert "/doc3.html" in host._pending_invalidations
