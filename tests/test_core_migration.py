"""Unit tests for the migration policy (rate limits, targets, revocation)."""

import pytest

from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.core.glt import GlobalLoadTable
from repro.core.ldg import LocalDocumentGraph
from repro.core.migration import MigrationPolicy
from repro.http.piggyback import LoadReport

HOME = Location("home", 80)
COOP_A = Location("a", 80)
COOP_B = Location("b", 80)


def build_policy(config=None, coops=(COOP_A, COOP_B), doc_count=5):
    config = config or ServerConfig(migration_hit_threshold=1.0)
    graph = LocalDocumentGraph(HOME)
    graph.add_document("/index.html", 100, entry_point=True,
                       link_to=[f"/d{i}" for i in range(doc_count)])
    for index in range(doc_count):
        graph.add_document(f"/d{index}", 100)
        graph.record_hit(f"/d{index}", 10 + index)
    glt = GlobalLoadTable(HOME)
    glt.update_own(100.0, 0.0)
    for coop in coops:
        glt.observe(LoadReport(str(coop), 0.0, 0.0))
    return MigrationPolicy(config, graph, glt), graph, glt


class TestTrigger:
    def test_migrates_when_overloaded(self):
        policy, graph, __ = build_policy()
        decisions = policy.consider(now=10.0, own_metric=100.0)
        assert len(decisions) == 1
        assert decisions[0].kind == "migrate"
        assert graph.get(decisions[0].name).location in (COOP_A, COOP_B)

    def test_no_migration_when_balanced(self):
        policy, __, glt = build_policy()
        glt.observe(LoadReport(str(COOP_A), 100.0, 1.0))
        glt.observe(LoadReport(str(COOP_B), 100.0, 1.0))
        assert policy.consider(now=10.0, own_metric=100.0) == []

    def test_no_migration_when_alone(self):
        policy, __, __ = build_policy(coops=())
        assert policy.consider(now=10.0, own_metric=100.0) == []

    def test_target_is_least_loaded(self):
        policy, __, glt = build_policy()
        glt.observe(LoadReport(str(COOP_A), 50.0, 1.0))
        glt.observe(LoadReport(str(COOP_B), 5.0, 1.0))
        decisions = policy.consider(now=10.0, own_metric=100.0)
        assert decisions[0].target == COOP_B


class TestRateLimits:
    def test_one_migration_per_interval(self):
        policy, __, __ = build_policy()
        assert len(policy.consider(now=10.0, own_metric=100.0)) == 1

    def test_coop_spacing_respected(self):
        config = ServerConfig(migration_hit_threshold=1.0,
                              coop_migration_spacing=60.0)
        policy, graph, glt = build_policy(config, coops=(COOP_A,))
        first = policy.consider(now=10.0, own_metric=100.0)
        assert first and first[0].target == COOP_A
        # Re-arm hits for the next round.
        for record in graph.documents():
            if not record.entry_point and record.location == HOME:
                record.window_hits = 10
        # 30 s later: the only co-op is still inside its 60 s spacing.
        assert policy.consider(now=40.0, own_metric=100.0) == []
        # 70 s later: the spacing has elapsed.
        assert len(policy.consider(now=80.0, own_metric=100.0)) == 1

    def test_migrated_names_tracked(self):
        policy, __, __ = build_policy()
        decisions = policy.consider(now=10.0, own_metric=100.0)
        name = decisions[0].name
        assert policy.migrated_names() == [name]
        assert policy.migration_of(name) == decisions[0].target


class TestRevocation:
    def test_revoke_restores_home(self):
        policy, graph, __ = build_policy()
        decision = policy.consider(now=10.0, own_metric=100.0)[0]
        revoke = policy.revoke(decision.name)
        assert revoke.kind == "revoke"
        assert graph.get(decision.name).location == HOME
        assert policy.migrated_names() == []

    def test_revoke_all_from_dead_coop(self):
        config = ServerConfig(migration_hit_threshold=1.0,
                              coop_migration_spacing=1.0,
                              max_migrations_per_interval=3)
        policy, graph, glt = build_policy(config, coops=(COOP_A,))
        policy.force_migrate("/d0", COOP_A, now=0.0)
        policy.force_migrate("/d1", COOP_A, now=0.0)
        decisions = policy.revoke_all_from(COOP_A)
        assert len(decisions) == 2
        assert graph.get("/d0").location == HOME
        assert graph.get("/d1").location == HOME

    def test_revoke_all_ignores_other_coops(self):
        policy, graph, __ = build_policy()
        policy.force_migrate("/d0", COOP_A, now=0.0)
        assert policy.revoke_all_from(COOP_B) == []
        assert graph.get("/d0").location == COOP_A


class TestRemigration:
    def test_hot_coop_triggers_remigration_after_timeout(self):
        config = ServerConfig(migration_hit_threshold=1.0,
                              home_remigration_interval=300.0)
        policy, graph, glt = build_policy(config)
        policy.force_migrate("/d0", COOP_A, now=0.0)
        glt.update_own(10.0, 400.0)
        glt.observe(LoadReport(str(COOP_A), 500.0, 400.0))  # hot spot
        glt.observe(LoadReport(str(COOP_B), 1.0, 400.0))
        decisions = policy.consider(now=400.0, own_metric=10.0)
        remigrations = [d for d in decisions if d.kind == "remigrate"]
        assert remigrations and remigrations[0].name == "/d0"
        assert graph.get("/d0").location == COOP_B

    def test_no_remigration_before_timeout(self):
        config = ServerConfig(migration_hit_threshold=1.0,
                              home_remigration_interval=300.0)
        policy, graph, glt = build_policy(config)
        policy.force_migrate("/d0", COOP_A, now=0.0)
        glt.update_own(10.0, 100.0)
        glt.observe(LoadReport(str(COOP_A), 500.0, 100.0))
        glt.observe(LoadReport(str(COOP_B), 1.0, 100.0))
        decisions = policy.consider(now=100.0, own_metric=10.0)
        assert [d for d in decisions if d.kind == "remigrate"] == []


class TestReplication:
    def test_replication_when_enabled_and_hot(self):
        config = ServerConfig(migration_hit_threshold=1.0, max_replicas=3,
                              imbalance_tolerance=1.05)
        policy, graph, glt = build_policy(config)
        policy.force_migrate("/d0", COOP_A, now=0.0)
        glt.update_own(200.0, 100.0)
        glt.observe(LoadReport(str(COOP_A), 500.0, 100.0))
        glt.observe(LoadReport(str(COOP_B), 1.0, 100.0))
        decisions = policy.consider(now=100.0, own_metric=200.0)
        replications = [d for d in decisions if d.kind == "replicate"]
        assert replications
        assert COOP_B in graph.get("/d0").locations()

    def test_no_replication_by_default(self):
        policy, graph, glt = build_policy()
        policy.force_migrate("/d0", COOP_A, now=0.0)
        glt.update_own(200.0, 100.0)
        glt.observe(LoadReport(str(COOP_A), 500.0, 100.0))
        glt.observe(LoadReport(str(COOP_B), 1.0, 100.0))
        decisions = policy.consider(now=100.0, own_metric=200.0)
        assert [d for d in decisions if d.kind == "replicate"] == []


class TestSelectionPolicies:
    @pytest.mark.parametrize("policy_name", ["paper", "hottest", "random"])
    def test_all_policies_pick_a_valid_document(self, policy_name):
        config = ServerConfig(migration_hit_threshold=1.0,
                              selection_policy=policy_name)
        policy, graph, __ = build_policy(config)
        decisions = policy.consider(now=10.0, own_metric=100.0)
        assert len(decisions) == 1
        record = graph.get(decisions[0].name)
        assert not record.entry_point

    def test_hottest_picks_max_hits(self):
        config = ServerConfig(migration_hit_threshold=1.0,
                              selection_policy="hottest")
        policy, __, __ = build_policy(config, doc_count=5)
        decisions = policy.consider(now=10.0, own_metric=100.0)
        assert decisions[0].name == "/d4"  # hits are 10 + index
