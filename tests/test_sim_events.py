"""Unit tests for the discrete-event loop."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventLoop


class TestScheduling:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(3.0, lambda: fired.append("c"))
        loop.schedule(1.0, lambda: fired.append("a"))
        loop.schedule(2.0, lambda: fired.append("b"))
        loop.run_until(10.0)
        assert fired == ["a", "b", "c"]

    def test_equal_times_fire_in_schedule_order(self):
        loop = EventLoop()
        fired = []
        for label in "abc":
            loop.schedule(1.0, lambda l=label: fired.append(l))
        loop.run_until(1.0)
        assert fired == ["a", "b", "c"]

    def test_now_advances_with_events(self):
        loop = EventLoop()
        seen = []
        loop.schedule(2.5, lambda: seen.append(loop.now))
        loop.run_until(10.0)
        assert seen == [2.5]
        assert loop.now == 10.0

    def test_scheduling_in_past_rejected(self):
        loop = EventLoop()
        loop.schedule(5.0, lambda: loop.schedule(1.0, lambda: None))
        with pytest.raises(SimulationError):
            loop.run_until(10.0)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventLoop().schedule_after(-1.0, lambda: None)

    def test_schedule_after(self):
        loop = EventLoop(start=5.0)
        fired = []
        loop.schedule_after(2.0, lambda: fired.append(loop.now))
        loop.run_until(10.0)
        assert fired == [7.0]

    def test_events_scheduled_during_run_fire(self):
        loop = EventLoop()
        fired = []

        def first():
            fired.append("first")
            loop.schedule_after(1.0, lambda: fired.append("second"))

        loop.schedule(1.0, first)
        loop.run_until(5.0)
        assert fired == ["first", "second"]

    def test_run_until_is_inclusive(self):
        loop = EventLoop()
        fired = []
        loop.schedule(5.0, lambda: fired.append(1))
        loop.run_until(5.0)
        assert fired == [1]

    def test_events_beyond_end_stay_queued(self):
        loop = EventLoop()
        fired = []
        loop.schedule(5.0, lambda: fired.append(1))
        loop.run_until(4.0)
        assert fired == []
        assert loop.pending == 1
        loop.run_until(5.0)
        assert fired == [1]

    def test_counters(self):
        loop = EventLoop()
        for t in range(3):
            loop.schedule(float(t), lambda: None)
        assert loop.run_until(10.0) == 3
        assert loop.events_processed == 3


class TestRunAll:
    def test_drains_queue(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda: fired.append(1))
        loop.schedule(2.0, lambda: fired.append(2))
        assert loop.run_all() == 2

    def test_runaway_guard(self):
        loop = EventLoop()

        def rescheduling():
            loop.schedule_after(1.0, rescheduling)

        loop.schedule(0.0, rescheduling)
        with pytest.raises(SimulationError):
            loop.run_all(max_events=100)


class TestEvery:
    def test_periodic_firing(self):
        loop = EventLoop()
        fired = []
        loop.every(10.0, lambda: fired.append(loop.now), end=35.0)
        loop.run_until(100.0)
        assert fired == [10.0, 20.0, 30.0]

    def test_start_offset(self):
        loop = EventLoop()
        fired = []
        loop.every(10.0, lambda: fired.append(loop.now), end=25.0,
                   start_offset=3.0)
        loop.run_until(100.0)
        assert fired == [3.0, 13.0, 23.0]

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(SimulationError):
            EventLoop().every(0.0, lambda: None)
