"""Unit tests for workload characterization."""

import math
import random

import pytest

from repro.analysis.workload import (
    characterize,
    per_client_requests,
    popularity_concentration,
    zipf_fit,
)
from repro.datasets.logs import LogRecord, generate_access_log
from repro.datasets.synthetic import build_synthetic_site


def trace_from_counts(counts):
    """A trace where document i appears counts[i] times."""
    records = []
    t = 0.0
    for index, count in enumerate(counts):
        for __ in range(count):
            records.append(LogRecord(time=t, client=f"c{index % 3}",
                                     path=f"/d{index}.html",
                                     size=1000 * (index + 1)))
            t += 0.1
    return records


class TestZipfFit:
    def test_uniform_popularity_exponent_near_zero(self):
        exponent, __ = zipf_fit({f"/d{i}": 50 for i in range(20)})
        assert abs(exponent) < 0.01

    def test_zipfian_counts_recovered(self):
        # counts ~ rank^-1: classic web popularity.
        counts = {f"/d{rank}": max(1, int(1000 / rank))
                  for rank in range(1, 50)}
        exponent, r_squared = zipf_fit(counts)
        assert exponent == pytest.approx(1.0, abs=0.15)
        assert r_squared > 0.95

    def test_single_document(self):
        assert zipf_fit({"/only": 7}) == (0.0, 1.0)


class TestConcentration:
    def test_uniform(self):
        frequency = {f"/d{i}": 10 for i in range(10)}
        assert popularity_concentration(frequency, 0.10) == \
            pytest.approx(0.1)

    def test_single_hot_spot(self):
        frequency = {"/hot": 910, **{f"/d{i}": 10 for i in range(9)}}
        assert popularity_concentration(frequency, 0.10) == \
            pytest.approx(0.91)

    def test_empty(self):
        assert popularity_concentration({}, 0.10) == 0.0


class TestCharacterize:
    def test_basic_counts(self):
        records = trace_from_counts([5, 3, 2])
        profile = characterize(records)
        assert profile.requests == 10
        assert profile.distinct_documents == 3
        assert profile.distinct_clients == 3

    def test_small_transfer_share(self):
        records = [LogRecord(0.0, "c", "/a", size=500),
                   LogRecord(0.1, "c", "/b", size=50_000)]
        profile = characterize(records)
        assert profile.small_transfer_share == pytest.approx(0.5)
        assert profile.mean_bytes == pytest.approx(25_250)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            characterize([])

    def test_format_is_complete(self):
        text = characterize(trace_from_counts([4, 2])).format()
        assert "Zipf exponent" in text
        assert "top-10%" in text

    def test_synthetic_hot_spot_site_measures_skewed(self):
        hot = build_synthetic_site(pages=30, images=10, image_skew=1.0,
                                   images_per_page=3, seed=3)
        flat = build_synthetic_site(pages=30, images=10, image_skew=0.0,
                                    images_per_page=3, seed=3)
        hot_profile = characterize(generate_access_log(
            hot, duration=120.0, sequences_per_second=2.0, seed=2))
        flat_profile = characterize(generate_access_log(
            flat, duration=120.0, sequences_per_second=2.0, seed=2))
        # The single shared image concentrates popularity.
        assert hot_profile.top_decile_share > flat_profile.top_decile_share


class TestPerClient:
    def test_descending_counts(self):
        records = trace_from_counts([4, 2, 1])
        counts = per_client_requests(records)
        assert counts == sorted(counts, reverse=True)
        assert sum(counts) == len(records)
