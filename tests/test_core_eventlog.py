"""Unit tests for the structured event log."""

import pytest

from repro.core.eventlog import Event, EventLog


class TestRecording:
    def test_record_and_query(self):
        log = EventLog()
        log.record(1.0, "migrate", name="/d.html", target="coop:80")
        log.record(2.0, "ping", peer="coop:80")
        assert len(log) == 2
        assert [e.kind for e in log.events()] == ["migrate", "ping"]
        assert log.events(kind="migrate")[0].fields["name"] == "/d.html"

    def test_since_filter(self):
        log = EventLog()
        log.record(1.0, "a")
        log.record(5.0, "a")
        assert len(log.events(since=3.0)) == 1

    def test_counts_survive_eviction(self):
        log = EventLog(capacity=3)
        for index in range(10):
            log.record(float(index), "migrate")
        assert len(log) == 3
        assert log.count("migrate") == 10
        assert log.counts() == {"migrate": 10}

    def test_last(self):
        log = EventLog()
        log.record(1.0, "a")
        log.record(2.0, "b")
        log.record(3.0, "a")
        assert log.last().time == 3.0
        assert log.last("b").time == 2.0
        assert log.last("missing") is None
        assert EventLog().last() is None

    def test_tail(self):
        log = EventLog()
        for index in range(5):
            log.record(float(index), "e", n=index)
        tail = log.tail(2)
        assert [e.fields["n"] for e in tail] == [3, 4]
        assert log.tail(0) == []

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)


class TestRendering:
    def test_render_is_stable(self):
        event = Event(1.5, "migrate", {"name": "/d", "target": "c:80"})
        assert event.render() == "[     1.500] migrate            name=/d target=c:80"

    def test_render_tail(self):
        log = EventLog()
        log.record(1.0, "a")
        log.record(2.0, "b")
        text = log.render_tail()
        assert "a" in text and "b" in text
        assert text.index("a") < text.index("b")


class TestEngineIntegration:
    def test_engine_logs_migration_events(self):
        from repro.core.config import ServerConfig
        from repro.core.document import Location
        from repro.http.messages import Request
        from repro.http.piggyback import LoadReport
        from repro.server.engine import DCWSEngine
        from repro.server.filestore import MemoryStore

        home = Location("home", 8001)
        coop = Location("coop", 8002)
        engine = DCWSEngine(home, ServerConfig(stats_interval=1.0,
                                               migration_hit_threshold=1.0),
                            MemoryStore({"/a.html": b"<html>x</html>"}),
                            peers=[coop])
        engine.initialize(0.0)
        for index in range(30):
            engine.handle_request(Request("GET", "/a.html"),
                                  1.0 + index * 0.001)
        engine.glt.observe(LoadReport("coop:8002", 0.0, 0.9))
        engine.tick(1.5)
        migrate_events = engine.log.events(kind="migrate")
        assert migrate_events
        assert migrate_events[0].fields["name"] == "/a.html"
