"""Tests for simulator extensions: think time and heterogeneous CPUs."""

import pytest

from repro.core.config import ServerConfig
from repro.datasets.synthetic import build_synthetic_site
from repro.errors import SimulationError
from repro.sim.cluster import ClusterConfig, SimCluster


def run_with(**kwargs):
    site = build_synthetic_site(pages=20, images=6, fanout=3, seed=4)
    defaults = dict(servers=2, clients=16, duration=25.0,
                    sample_interval=5.0, seed=3,
                    server_config=ServerConfig().scaled(0.2), prewarm=True)
    defaults.update(kwargs)
    return SimCluster(site, ClusterConfig(**defaults)).run()


class TestThinkTime:
    def test_think_time_reduces_demand(self):
        busy = run_with(think_time=0.0)
        relaxed = run_with(think_time=3.0)
        assert relaxed.client_stats.requests < busy.client_stats.requests / 2

    def test_think_time_still_navigates(self):
        result = run_with(think_time=1.0)
        assert result.client_stats.steps > 0
        assert result.client_stats.sequences > 0

    def test_deterministic_with_think_time(self):
        first = run_with(think_time=1.0)
        second = run_with(think_time=1.0)
        assert first.client_stats.requests == second.client_stats.requests


class TestHeterogeneousCpus:
    def test_slow_servers_serve_less_under_static_split(self):
        # All-slow vs all-fast sanity: scaling every CPU by 2 halves
        # deliverable throughput at saturation.
        fast = run_with(clients=64)
        slow = run_with(clients=64, cpu_scales=(2.0, 2.0))
        assert slow.steady_cps() < fast.steady_cps() * 0.75

    def test_mixed_speeds_accepted(self):
        result = run_with(cpu_scales=(1.0, 2.0))
        assert result.client_stats.requests > 0

    def test_wrong_length_rejected(self):
        with pytest.raises(SimulationError):
            run_with(cpu_scales=(1.0, 2.0, 3.0))

    def test_drop_pressure_metric_advertises_overload(self):
        from repro.core.metrics import LoadMetricKind, ServerMetrics

        metrics = ServerMetrics(window=10.0)
        for t in range(10):
            metrics.record_connection(float(t), 100)
            metrics.record_drop(float(t))
        plain = metrics.load_metric(9.5, LoadMetricKind.CPS)
        pressured = metrics.load_metric(9.5, LoadMetricKind.CPS,
                                        drop_pressure_weight=25.0)
        assert pressured > plain
        # Drops average over a 4x window: 10 drops / 40 s = 0.25/s.
        assert pressured == pytest.approx(plain + 25.0 * 0.25)
