"""Unit tests for the tolerant HTML tokenizer."""

from repro.html.tokenizer import (
    Comment,
    Doctype,
    EndTag,
    StartTag,
    TextToken,
    escape_attribute,
    tokenize_html,
    unescape_entities,
)


class TestBasicTokens:
    def test_simple_element(self):
        tokens = tokenize_html("<b>hi</b>")
        assert tokens == [StartTag("b"), TextToken("hi"), EndTag("b")]

    def test_text_only(self):
        assert tokenize_html("plain text") == [TextToken("plain text")]

    def test_tag_names_lowercased(self):
        tokens = tokenize_html("<IMG SRC='x.gif'>")
        assert tokens[0].name == "img"
        assert tokens[0].attrs == [("src", "x.gif")]

    def test_comment(self):
        tokens = tokenize_html("<!-- note -->")
        assert tokens == [Comment(" note ")]

    def test_doctype(self):
        tokens = tokenize_html("<!DOCTYPE html><p>x")
        assert isinstance(tokens[0], Doctype)
        assert tokens[0].data == "DOCTYPE html"

    def test_self_closing(self):
        tokens = tokenize_html("<br/>")
        assert tokens[0].self_closing is True


class TestAttributes:
    def test_double_quoted(self):
        tag = tokenize_html('<a href="x.html">')[0]
        assert tag.get_attr("href") == "x.html"

    def test_single_quoted(self):
        tag = tokenize_html("<a href='x.html'>")[0]
        assert tag.get_attr("href") == "x.html"

    def test_unquoted(self):
        tag = tokenize_html("<a href=x.html target=_top>")[0]
        assert tag.get_attr("href") == "x.html"
        assert tag.get_attr("target") == "_top"

    def test_bare_attribute(self):
        tag = tokenize_html("<input checked>")[0]
        assert tag.attrs == [("checked", None)]

    def test_attribute_names_lowercased(self):
        tag = tokenize_html('<A HREF="x">')[0]
        assert tag.get_attr("href") == "x"

    def test_entity_in_attribute_unescaped(self):
        tag = tokenize_html('<a href="cgi?a=1&amp;b=2">')[0]
        assert tag.get_attr("href") == "cgi?a=1&b=2"

    def test_set_attr_updates_in_place(self):
        tag = tokenize_html('<a href="old" class="k">')[0]
        tag.set_attr("href", "new")
        assert tag.attrs == [("href", "new"), ("class", "k")]

    def test_set_attr_appends_when_missing(self):
        tag = tokenize_html("<a>")[0]
        tag.set_attr("href", "x")
        assert tag.get_attr("href") == "x"

    def test_whitespace_between_attrs(self):
        tag = tokenize_html('<a  href = "x"   class= y >')[0]
        assert tag.get_attr("href") == "x"
        assert tag.get_attr("class") == "y"


class TestRecovery:
    def test_stray_less_than_is_text(self):
        tokens = tokenize_html("a < b")
        assert "".join(t.data for t in tokens
                       if isinstance(t, TextToken)) == "a < b"

    def test_unterminated_tag_at_eof(self):
        tokens = tokenize_html("<a href=")
        assert isinstance(tokens[0], StartTag)

    def test_unterminated_comment(self):
        tokens = tokenize_html("<!-- never closed")
        assert tokens == [Comment(" never closed")]

    def test_empty_end_tag_recovered_as_text(self):
        tokens = tokenize_html("x</>y")
        text = "".join(t.data for t in tokens if isinstance(t, TextToken))
        assert "x" in text and "y" in text

    def test_stray_slash_in_tag(self):
        tag = tokenize_html("<a / href='x'>")[0]
        assert tag.get_attr("href") == "x"


class TestRawText:
    def test_script_content_not_tokenized(self):
        tokens = tokenize_html("<script>if (a<b) x();</script>")
        assert tokens[0] == StartTag("script")
        assert tokens[1] == TextToken("if (a<b) x();")
        assert tokens[2] == EndTag("script")

    def test_style_content_not_tokenized(self):
        tokens = tokenize_html("<style>a > b {}</style>")
        assert tokens[1] == TextToken("a > b {}")

    def test_unclosed_script_runs_to_eof(self):
        tokens = tokenize_html("<script>var x = 1;")
        assert tokens[-1] == TextToken("var x = 1;")


class TestEntities:
    def test_named(self):
        assert unescape_entities("a&amp;b") == "a&b"
        assert unescape_entities("&lt;&gt;&quot;") == '<>"'

    def test_numeric(self):
        assert unescape_entities("&#65;") == "A"
        assert unescape_entities("&#x41;") == "A"

    def test_unknown_left_alone(self):
        assert unescape_entities("&bogus;") == "&bogus;"

    def test_bare_ampersand(self):
        assert unescape_entities("fish & chips") == "fish & chips"

    def test_no_ampersand_fast_path(self):
        assert unescape_entities("plain") == "plain"

    def test_escape_attribute(self):
        assert escape_attribute('a&"b') == "a&amp;&quot;b"
