"""The sans-I/O request parser shared by both socket front ends.

Mirrors the blocking-reader suite (tests/test_server_request_reader.py)
through :class:`repro.http.wire.RequestParser`, so the one protocol
implementation both front ends consume is tested at the byte level:
framing, pipelining, dribbled feeds, EOF semantics, size limits.
"""

import pytest

from repro.errors import HTTPError
from repro.http.wire import DEFAULT_MAX_REQUEST, RequestParser


class TestFraming:
    def test_single_request(self):
        parser = RequestParser()
        parser.feed(b"GET /x.html HTTP/1.0\r\nHost: h\r\n\r\n")
        request = parser.next_request()
        assert request.method == "GET"
        assert request.target == "/x.html"
        assert request.body == b""
        assert not parser.buffered

    def test_incomplete_head_returns_none(self):
        parser = RequestParser()
        parser.feed(b"GET /x.html HTTP/1.0\r\nHost:")
        assert parser.next_request() is None
        assert parser.buffered

    def test_body_read_to_content_length(self):
        parser = RequestParser()
        parser.feed(b"POST /x HTTP/1.0\r\nContent-Length: 5\r\n\r\nhello-EXTRA")
        request = parser.next_request()
        assert request.body == b"hello"
        # Bytes past the frame stay buffered for the next request.
        assert parser.buffered

    def test_body_arrives_in_pieces(self):
        parser = RequestParser()
        parser.feed(b"POST /x HTTP/1.0\r\nContent-Length: 10\r\n\r\n12345")
        assert parser.next_request() is None
        parser.feed(b"67890")
        assert parser.next_request().body == b"1234567890"

    def test_malformed_request_line_raises(self):
        parser = RequestParser()
        parser.feed(b"NOT-HTTP\r\n\r\n")
        with pytest.raises(HTTPError):
            parser.next_request()


class TestPipelining:
    def test_two_requests_served_in_turn(self):
        parser = RequestParser()
        parser.feed(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n")
        assert parser.next_request().target == "/a"
        assert parser.buffered
        assert parser.next_request().target == "/b"
        assert not parser.buffered
        assert parser.next_request() is None

    def test_dribbled_byte_at_a_time(self):
        parser = RequestParser()
        wire = b"GET /slow HTTP/1.0\r\nHost: h\r\n\r\n"
        for index in range(len(wire) - 1):
            parser.feed(wire[index:index + 1])
            assert parser.next_request() is None
        parser.feed(wire[-1:])
        assert parser.next_request().target == "/slow"


class TestEOF:
    def test_clean_eof_between_requests_is_none(self):
        parser = RequestParser()
        parser.feed_eof()
        assert parser.next_request() is None
        assert parser.eof

    def test_eof_after_complete_request_still_yields_it(self):
        parser = RequestParser()
        parser.feed(b"GET / HTTP/1.0\r\n\r\n")
        parser.feed_eof()
        assert parser.next_request().target == "/"
        assert parser.next_request() is None

    def test_eof_mid_head_raises(self):
        parser = RequestParser()
        parser.feed(b"GET /x.html HTTP/1.0\r\nHost:")
        parser.feed_eof()
        with pytest.raises(HTTPError):
            parser.next_request()

    def test_eof_mid_body_raises(self):
        parser = RequestParser()
        parser.feed(b"POST /x HTTP/1.0\r\nContent-Length: 100\r\n\r\npartial")
        parser.feed_eof()
        with pytest.raises(HTTPError):
            parser.next_request()

    def test_feeding_after_eof_raises(self):
        parser = RequestParser()
        parser.feed_eof()
        with pytest.raises(HTTPError):
            parser.feed(b"GET / HTTP/1.0\r\n\r\n")


class TestLimits:
    def test_default_limit(self):
        assert RequestParser().max_request == DEFAULT_MAX_REQUEST

    def test_oversize_head_rejected_at_feed(self):
        parser = RequestParser(max_request=64)
        with pytest.raises(HTTPError):
            parser.feed(b"GET /" + b"x" * 100 + b" HTTP/1.0\r\n\r\n")

    def test_oversize_body_rejected_at_parse(self):
        parser = RequestParser(max_request=64)
        parser.feed(b"POST /x HTTP/1.0\r\nContent-Length: 999\r\n\r\n")
        with pytest.raises(HTTPError):
            parser.next_request()
