"""The sans-I/O request parser shared by both socket front ends.

Mirrors the blocking-reader suite (tests/test_server_request_reader.py)
through :class:`repro.http.wire.RequestParser`, so the one protocol
implementation both front ends consume is tested at the byte level:
framing, pipelining, dribbled feeds, EOF semantics, size limits.
"""

import pytest

from repro.errors import HTTPError, RecoverableProtocolError
from repro.http.wire import DEFAULT_MAX_REQUEST, RequestParser


class TestFraming:
    def test_single_request(self):
        parser = RequestParser()
        parser.feed(b"GET /x.html HTTP/1.0\r\nHost: h\r\n\r\n")
        request = parser.next_request()
        assert request.method == "GET"
        assert request.target == "/x.html"
        assert request.body == b""
        assert not parser.buffered

    def test_incomplete_head_returns_none(self):
        parser = RequestParser()
        parser.feed(b"GET /x.html HTTP/1.0\r\nHost:")
        assert parser.next_request() is None
        assert parser.buffered

    def test_body_read_to_content_length(self):
        parser = RequestParser()
        parser.feed(b"POST /x HTTP/1.0\r\nContent-Length: 5\r\n\r\nhello-EXTRA")
        request = parser.next_request()
        assert request.body == b"hello"
        # Bytes past the frame stay buffered for the next request.
        assert parser.buffered

    def test_body_arrives_in_pieces(self):
        parser = RequestParser()
        parser.feed(b"POST /x HTTP/1.0\r\nContent-Length: 10\r\n\r\n12345")
        assert parser.next_request() is None
        parser.feed(b"67890")
        assert parser.next_request().body == b"1234567890"

    def test_malformed_request_line_raises(self):
        parser = RequestParser()
        parser.feed(b"NOT-HTTP\r\n\r\n")
        with pytest.raises(HTTPError):
            parser.next_request()


class TestPipelining:
    def test_two_requests_served_in_turn(self):
        parser = RequestParser()
        parser.feed(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n")
        assert parser.next_request().target == "/a"
        assert parser.buffered
        assert parser.next_request().target == "/b"
        assert not parser.buffered
        assert parser.next_request() is None

    def test_dribbled_byte_at_a_time(self):
        parser = RequestParser()
        wire = b"GET /slow HTTP/1.0\r\nHost: h\r\n\r\n"
        for index in range(len(wire) - 1):
            parser.feed(wire[index:index + 1])
            assert parser.next_request() is None
        parser.feed(wire[-1:])
        assert parser.next_request().target == "/slow"


class TestEOF:
    def test_clean_eof_between_requests_is_none(self):
        parser = RequestParser()
        parser.feed_eof()
        assert parser.next_request() is None
        assert parser.eof

    def test_eof_after_complete_request_still_yields_it(self):
        parser = RequestParser()
        parser.feed(b"GET / HTTP/1.0\r\n\r\n")
        parser.feed_eof()
        assert parser.next_request().target == "/"
        assert parser.next_request() is None

    def test_eof_mid_head_raises(self):
        parser = RequestParser()
        parser.feed(b"GET /x.html HTTP/1.0\r\nHost:")
        parser.feed_eof()
        with pytest.raises(HTTPError):
            parser.next_request()

    def test_eof_mid_body_raises(self):
        parser = RequestParser()
        parser.feed(b"POST /x HTTP/1.0\r\nContent-Length: 100\r\n\r\npartial")
        parser.feed_eof()
        with pytest.raises(HTTPError):
            parser.next_request()

    def test_feeding_after_eof_raises(self):
        parser = RequestParser()
        parser.feed_eof()
        with pytest.raises(HTTPError):
            parser.feed(b"GET / HTTP/1.0\r\n\r\n")


class TestContentLengthStrictness:
    """The framing bugfix: Content-Length is validated before it frames.

    The original code trusted the raw value — ``Content-Length: -20``
    made ``needed < head_end + 4``, so the buffer delete stopped short of
    the head and the residue desynced every later pipelined request.
    """

    def test_negative_content_length_recoverable(self):
        parser = RequestParser()
        parser.feed(b"POST /x HTTP/1.0\r\nContent-Length: -20\r\n\r\n")
        with pytest.raises(RecoverableProtocolError):
            parser.next_request()

    def test_negative_content_length_does_not_desync_pipeline(self):
        parser = RequestParser()
        parser.feed(b"POST /evil HTTP/1.1\r\nContent-Length: -20\r\n\r\n"
                    b"GET /next HTTP/1.1\r\nHost: h\r\n\r\n")
        with pytest.raises(RecoverableProtocolError):
            parser.next_request()
        # The offending head was consumed exactly; the pipelined request
        # behind it parses normally.
        request = parser.next_request()
        assert request.target == "/next"
        assert not parser.buffered

    # (" 5" / "5 " are absent: OWS around a field value is legal and
    # stripped at parse; what must never pass is int()'s extra syntax.)
    @pytest.mark.parametrize("value", [b"+5", b"-0", b"1_0", b"0x10",
                                       b"5,5", b"", b"4.2", b"\xc2\xb3"])
    def test_nonconforming_values_recoverable(self, value):
        parser = RequestParser()
        parser.feed(b"POST /x HTTP/1.0\r\nContent-Length: " + value
                    + b"\r\n\r\nGET /ok HTTP/1.0\r\n\r\n")
        with pytest.raises(RecoverableProtocolError):
            parser.next_request()
        assert parser.next_request().target == "/ok"

    def test_conflicting_duplicate_content_length_fatal(self):
        # Two differing Content-Length fields are the request-smuggling
        # vector: framing is ambiguous, so the error is NOT recoverable —
        # the connection must close.
        parser = RequestParser()
        parser.feed(b"POST /x HTTP/1.0\r\nContent-Length: 5\r\n"
                    b"Content-Length: 30\r\n\r\nhello")
        with pytest.raises(HTTPError) as excinfo:
            parser.next_request()
        assert not isinstance(excinfo.value, RecoverableProtocolError)

    def test_equal_duplicate_content_length_accepted(self):
        parser = RequestParser()
        parser.feed(b"POST /x HTTP/1.0\r\nContent-Length: 5\r\n"
                    b"Content-Length: 5\r\n\r\nhello")
        assert parser.next_request().body == b"hello"

    def test_invalid_length_split_across_feeds(self):
        # The validator header straddling two feeds must behave exactly
        # like a single feed: recoverable, pipeline intact.
        parser = RequestParser()
        for chunk in (b"POST /x HTTP/1.0\r\nContent-Le",
                      b"ngth: -", b"7\r\n", b"\r\n",
                      b"GET /after HTTP/1.0\r\n\r\n"):
            parser.feed(chunk)
        with pytest.raises(RecoverableProtocolError):
            parser.next_request()
        assert parser.next_request().target == "/after"

    def test_overlong_content_length_still_fatal(self):
        # A syntactically valid but over-limit length keeps the fatal
        # path: the client really does intend to send that body.
        parser = RequestParser(max_request=64)
        parser.feed(b"POST /x HTTP/1.0\r\nContent-Length: 999999\r\n\r\n")
        with pytest.raises(HTTPError) as excinfo:
            parser.next_request()
        assert not isinstance(excinfo.value, RecoverableProtocolError)

    def test_recoverable_error_is_http_error(self):
        # Hosts that only catch HTTPError still fail closed.
        assert issubclass(RecoverableProtocolError, HTTPError)


class TestLimits:
    def test_default_limit(self):
        assert RequestParser().max_request == DEFAULT_MAX_REQUEST

    def test_oversize_head_rejected_at_feed(self):
        parser = RequestParser(max_request=64)
        with pytest.raises(HTTPError):
            parser.feed(b"GET /" + b"x" * 100 + b" HTTP/1.0\r\n\r\n")

    def test_oversize_body_rejected_at_parse(self):
        parser = RequestParser(max_request=64)
        parser.feed(b"POST /x HTTP/1.0\r\nContent-Length: 999\r\n\r\n")
        with pytest.raises(HTTPError):
            parser.next_request()
