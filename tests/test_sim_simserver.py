"""Unit tests for simulated server nodes (queueing, drops, crash)."""

from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.http.messages import Request
from repro.server.engine import DCWSEngine
from repro.server.filestore import MemoryStore
from repro.sim.events import EventLoop
from repro.sim.network import CostModel
from repro.sim.simserver import SimServer, StaticServer

HOME = Location("home", 80)


def collect(responses):
    def respond(response):
        responses.append(response)
    return respond


def make_static(loop, *, workers=2, queue_length=3, costs=None):
    store = MemoryStore({"/a.html": b"<html>doc</html>",
                         "/big.bin": b"x" * 1_000_000})
    return StaticServer("s", store, loop, costs or CostModel(),
                        workers=workers, queue_length=queue_length)


class TestStaticServing:
    def test_serves_document(self):
        loop = EventLoop()
        server = make_static(loop)
        responses = []
        server.deliver(Request("GET", "/a.html"), collect(responses))
        loop.run_until(1.0)
        assert len(responses) == 1
        assert responses[0].status == 200
        assert responses[0].body == b"<html>doc</html>"

    def test_404(self):
        loop = EventLoop()
        server = make_static(loop)
        responses = []
        server.deliver(Request("GET", "/missing"), collect(responses))
        loop.run_until(1.0)
        assert responses[0].status == 404

    def test_response_takes_time(self):
        loop = EventLoop()
        server = make_static(loop)
        arrival_times = []
        server.deliver(Request("GET", "/a.html"),
                       lambda r: arrival_times.append(loop.now))
        loop.run_until(1.0)
        # At least CPU (1 ms) plus latency.
        assert arrival_times[0] >= 0.001

    def test_large_transfer_limited_by_nic(self):
        loop = EventLoop()
        server = make_static(loop)
        arrival_times = []
        server.deliver(Request("GET", "/big.bin"),
                       lambda r: arrival_times.append(loop.now))
        loop.run_until(10.0)
        # 1 MB at 100 Mbps is 80 ms of transfer.
        assert arrival_times[0] >= 0.08


class TestQueueing:
    def test_overflow_drops_with_503(self):
        loop = EventLoop()
        # 1 worker busy with the big file + queue of 2 -> 4th drops.
        server = make_static(loop, workers=1, queue_length=2)
        responses = []
        for __ in range(4):
            server.deliver(Request("GET", "/big.bin"), collect(responses))
        loop.run_until(60.0)
        statuses = sorted(r.status for r in responses)
        assert statuses == [200, 200, 200, 503]
        assert server.dropped == 1

    def test_queued_requests_served_in_order(self):
        loop = EventLoop()
        server = make_static(loop, workers=1, queue_length=10)
        order = []
        for index in range(3):
            server.deliver(
                Request("GET", "/a.html"),
                lambda r, i=index: order.append(i))
        loop.run_until(10.0)
        assert order == [0, 1, 2]

    def test_workers_parallelize(self):
        loop = EventLoop()
        slow = CostModel(request_cpu=0.0)  # pure transfer, no CPU queueing
        server = make_static(loop, workers=2, queue_length=10, costs=slow)
        finish_times = []
        for __ in range(2):
            server.deliver(Request("GET", "/a.html"),
                           lambda r: finish_times.append(loop.now))
        loop.run_until(10.0)
        assert len(finish_times) == 2


class TestCrash:
    def test_crashed_server_times_out(self):
        loop = EventLoop()
        server = make_static(loop)
        server.crash()
        responses = []
        server.deliver(Request("GET", "/a.html"), collect(responses))
        loop.run_until(60.0)
        assert responses == [None]

    def test_queued_requests_fail_on_crash(self):
        loop = EventLoop()
        server = make_static(loop, workers=1, queue_length=5)
        responses = []
        for __ in range(3):
            server.deliver(Request("GET", "/big.bin"), collect(responses))
        server.crash()
        loop.run_until(60.0)
        # Queued requests (not yet started) answer None on timeout.
        assert None in responses

    def test_recover(self):
        loop = EventLoop()
        server = make_static(loop)
        server.crash()
        server.recover()
        responses = []
        server.deliver(Request("GET", "/a.html"), collect(responses))
        loop.run_until(10.0)
        assert responses[0].status == 200


class TestSimServerEngine:
    def test_hosts_real_engine(self):
        loop = EventLoop()
        costs = CostModel()
        store = MemoryStore({"/index.html": b'<html><a href="a.html">a</a></html>',
                             "/a.html": b"<html>a</html>"})
        engine = DCWSEngine(HOME, ServerConfig(), store,
                            entry_points=["/index.html"])
        engine.initialize(0.0)
        server = SimServer(engine, loop, costs,
                           send=lambda *a: None)
        responses = []
        server.deliver(Request("GET", "/a.html"), collect(responses))
        loop.run_until(1.0)
        assert responses[0].status == 200
        assert engine.stats.responses_200 == 1

    def test_drop_recorded_in_engine_metrics(self):
        loop = EventLoop()
        costs = CostModel()
        store = MemoryStore({"/a.html": b"<html>a</html>"})
        config = ServerConfig(worker_threads=1, socket_queue_length=1)
        engine = DCWSEngine(HOME, config, store)
        engine.initialize(0.0)
        server = SimServer(engine, loop, costs, send=lambda *a: None)
        responses = []
        for __ in range(5):
            server.deliver(Request("GET", "/a.html"), collect(responses))
        loop.run_until(10.0)
        assert server.dropped >= 1
        assert engine.metrics.drops.lifetime_count == server.dropped
