"""Unit tests for access-log replay against the simulated cluster."""

import pytest

from repro.core.config import ServerConfig
from repro.datasets.logs import LogRecord, generate_access_log
from repro.datasets.synthetic import build_synthetic_site
from repro.sim.cluster import ClusterConfig, SimCluster
from repro.sim.replay import ReplayClient, attach_replay


def make_cluster(prewarm=True, servers=2):
    site = build_synthetic_site(pages=20, images=6, fanout=3, seed=4)
    config = ClusterConfig(servers=servers, clients=0, duration=30.0,
                           sample_interval=10.0, seed=1,
                           server_config=ServerConfig().scaled(0.2),
                           prewarm=prewarm)
    return site, SimCluster(site, config)


class TestReplay:
    def test_replays_whole_trace(self):
        site, cluster = make_cluster()
        records = [LogRecord(time=float(i), client="c", path=name)
                   for i, name in enumerate(sorted(site.documents)[:10])]
        replayer = attach_replay(cluster, records)
        cluster.run(extra_setup=lambda c: replayer.start())
        assert replayer.stats.issued >= len(records)
        assert replayer.stats.succeeded + replayer.stats.failed + \
            replayer.stats.dropped >= len(records)

    def test_stale_urls_redirect_on_warmed_cluster(self):
        site, cluster = make_cluster(prewarm=True)
        records = generate_access_log(site, duration=20.0,
                                      sequences_per_second=1.0, seed=3)
        replayer = attach_replay(cluster, records)
        cluster.run(extra_setup=lambda c: replayer.start())
        # Prewarm migrated half the documents: some replays must bounce.
        assert replayer.stats.redirected > 0
        assert replayer.redirect_fraction > 0.0
        # And they ultimately succeed.
        assert replayer.stats.succeeded > 0
        assert replayer.stats.failed == 0

    def test_cold_cluster_never_redirects(self):
        site, cluster = make_cluster(prewarm=False)
        records = [LogRecord(time=float(i), client="c", path=name)
                   for i, name in enumerate(sorted(site.documents)[:10])]
        replayer = attach_replay(cluster, records)
        cluster.run(extra_setup=lambda c: replayer.start())
        assert replayer.stats.redirected == 0
        assert replayer.redirect_fraction == 0.0

    def test_time_scale_compresses_schedule(self):
        site, cluster = make_cluster()
        records = [LogRecord(time=0.0, client="c", path="/page000.html"),
                   LogRecord(time=1000.0, client="c", path="/page001.html")]
        replayer = ReplayClient(cluster, records, time_scale=0.01)
        cluster.run(extra_setup=lambda c: replayer.start())
        # Both requests fit in the 30 s run thanks to the 100x compression.
        assert replayer.stats.issued >= 2

    def test_rejects_bad_time_scale(self):
        site, cluster = make_cluster()
        with pytest.raises(ValueError):
            ReplayClient(cluster, [], time_scale=0.0)

    def test_unknown_path_404s_but_is_counted(self):
        site, cluster = make_cluster(prewarm=False)
        records = [LogRecord(time=0.0, client="c", path="/ghost.html")]
        replayer = attach_replay(cluster, records)
        cluster.run(extra_setup=lambda c: replayer.start())
        assert replayer.stats.failed == 1
        assert 404 in replayer.stats.statuses
