"""Unit tests for the /~dcws/ administrative endpoints."""

import pytest

from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.http.messages import Request
from repro.server.engine import DCWSEngine
from repro.server.filestore import MemoryStore

HOME = Location("home", 8001)
COOP = Location("coop", 8002)

SITE = {
    "/index.html": b'<html><a href="d.html">D</a></html>',
    "/d.html": b"<html>doc</html>",
}


@pytest.fixture()
def engine():
    engine = DCWSEngine(HOME, ServerConfig(), MemoryStore(SITE),
                        entry_points=["/index.html"], peers=[COOP])
    engine.initialize(0.0)
    return engine


def fetch(engine, path, method="GET"):
    return engine.handle_request(Request(method, path), 1.0).response


class TestStatus:
    def test_status_endpoint(self, engine):
        response = fetch(engine, "/~dcws/status")
        assert response.status == 200
        assert response.headers.get("Content-Type") == "text/plain"
        body = response.body.decode()
        assert "home:8001" in body
        assert "documents (home)" in body

    def test_status_reflects_counters(self, engine):
        fetch(engine, "/d.html")
        body = fetch(engine, "/~dcws/status").body.decode()
        assert "200 OK                1" in body

    def test_head_has_no_body(self, engine):
        response = fetch(engine, "/~dcws/status", method="HEAD")
        assert response.status == 200
        assert response.body == b""


class TestGraph:
    def test_graph_lists_every_tuple(self, engine):
        body = fetch(engine, "/~dcws/graph").body.decode()
        assert "/index.html" in body
        assert "/d.html" in body
        assert "LinkFrom" in body

    def test_graph_shows_migration(self, engine):
        engine.policy.force_migrate("/d.html", COOP, 0.5)
        body = fetch(engine, "/~dcws/graph").body.decode()
        assert "coop:8002" in body


class TestLoadTable:
    def test_load_endpoint(self, engine):
        engine.glt.update_own(12.5, 1.0)
        body = fetch(engine, "/~dcws/load").body.decode()
        assert "home:8001" in body
        assert "12.5" in body
        assert "coop:8002" in body
        assert "never" in body  # registered peer without a report yet


class TestEvents:
    def test_events_endpoint(self, engine):
        engine.policy.force_migrate("/d.html", COOP, 0.5)
        engine.log.record(0.5, "migrate", name="/d.html", target=str(COOP))
        body = fetch(engine, "/~dcws/events").body.decode()
        assert "migrate" in body
        assert "/d.html" in body

    def test_empty_log(self, engine):
        body = fetch(engine, "/~dcws/events").body.decode()
        assert "(none)" in body


class TestPeers:
    def test_peers_endpoint_without_breaker(self, engine):
        response = fetch(engine, "/~dcws/peers")
        assert response.status == 200
        body = response.body.decode()
        assert "coop:8002" in body
        assert "breaker trips (lifetime) 0" in body
        assert "no-row" in body  # peer registered, no load report yet

    def test_peers_endpoint_shows_breaker_and_health_state(self, engine):
        from repro.client.breaker import CircuitBreaker

        engine.breaker = CircuitBreaker(failure_threshold=1, jitter=0.0)
        key = str(COOP)
        engine.breaker.check(key)
        engine.breaker.record_failure(key)
        engine.health.record_failure(key)
        body = fetch(engine, "/~dcws/peers").body.decode()
        assert "open" in body
        assert "breaker trips (lifetime) 1" in body

    def test_peers_endpoint_shows_last_success_age(self, engine):
        engine.health.record_success(str(COOP), 0.5)
        body = fetch(engine, "/~dcws/peers").body.decode()
        assert "0.5s" in body  # handled at t=1.0, success at t=0.5


class TestDispatch:
    def test_unknown_endpoint_404(self, engine):
        response = fetch(engine, "/~dcws/nonsense")
        assert response.status == 404
        assert b"status" in response.body  # hints at valid endpoints

    def test_admin_requests_counted_as_requests(self, engine):
        before = engine.stats.requests
        fetch(engine, "/~dcws/status")
        assert engine.stats.requests == before + 1
