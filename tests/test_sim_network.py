"""Unit tests for serializers, bandwidth links, and the cost model."""

import pytest

from repro.errors import SimulationError
from repro.sim.network import BandwidthLink, CostModel, PAPER_COSTS, Serializer


class TestSerializer:
    def test_idle_resource_starts_immediately(self):
        resource = Serializer("cpu")
        start, end = resource.reserve(5.0, 2.0)
        assert (start, end) == (5.0, 7.0)

    def test_busy_resource_queues(self):
        resource = Serializer("cpu")
        resource.reserve(0.0, 10.0)
        start, end = resource.reserve(5.0, 1.0)
        assert (start, end) == (10.0, 11.0)

    def test_later_arrival_after_idle(self):
        resource = Serializer("cpu")
        resource.reserve(0.0, 1.0)
        start, __ = resource.reserve(50.0, 1.0)
        assert start == 50.0

    def test_zero_duration_allowed(self):
        resource = Serializer("cpu")
        start, end = resource.reserve(1.0, 0.0)
        assert start == end == 1.0

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            Serializer("cpu").reserve(0.0, -1.0)

    def test_utilization(self):
        resource = Serializer("cpu")
        resource.reserve(0.0, 3.0)
        assert resource.utilization(10.0) == pytest.approx(0.3)
        assert resource.utilization(0.0) == 0.0

    def test_utilization_capped_at_one(self):
        resource = Serializer("cpu")
        resource.reserve(0.0, 100.0)
        assert resource.utilization(10.0) == 1.0


class TestBandwidthLink:
    def test_transfer_time(self):
        link = BandwidthLink(100e6)  # 100 Mbps
        assert link.transfer_time(12_500_000) == pytest.approx(1.0)

    def test_reserve_bytes_serializes(self):
        link = BandwidthLink(8e6)  # 1 MB/s
        __, first_end = link.reserve_bytes(0.0, 1_000_000)
        start, __ = link.reserve_bytes(0.0, 1_000_000)
        assert first_end == pytest.approx(1.0)
        assert start == pytest.approx(1.0)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(SimulationError):
            BandwidthLink(0.0)


class TestCostModel:
    def test_paper_constants(self):
        assert PAPER_COSTS.reconstruct_cpu == pytest.approx(0.020)
        assert PAPER_COSTS.parse_cpu == pytest.approx(0.003)
        assert PAPER_COSTS.node_bandwidth == pytest.approx(100e6)
        assert PAPER_COSTS.switch_bandwidth == pytest.approx(2.4e9)

    def test_cpu_cost_ordering(self):
        costs = CostModel()
        assert costs.cpu_cost(error=True) < costs.cpu_cost(redirected=True) \
            < costs.cpu_cost()
        assert costs.cpu_cost(reconstructed=True) == \
            pytest.approx(costs.request_cpu + costs.reconstruct_cpu)

    def test_redirect_cheaper_than_serving(self):
        # Section 4.4: redirections cause "a fairly low amount of load".
        costs = CostModel()
        assert costs.cpu_cost(redirected=True) < costs.cpu_cost() / 2

    def test_keep_alive_shrinks_connection_overhead(self):
        default = CostModel()
        persistent = CostModel(keep_alive=True)
        assert default.effective_connection_overhead() == \
            default.connection_overhead_bytes
        assert persistent.effective_connection_overhead() == \
            persistent.keepalive_overhead_bytes
        assert persistent.effective_connection_overhead() < \
            default.effective_connection_overhead()
