"""Write-ahead journal: framing, torn tails, replay, checkpoint, fsck.

Covers the durability subsystem end to end at the unit level:

- record framing round-trips and a scan stops cleanly at damage;
- torn-tail fuzz: truncating the journal at *every byte offset* of its
  final record must recover without raising (satellite of the crash
  suite — the same property the SIGKILL harness exercises end to end);
- replay is idempotent: applying any journal prefix twice leaves the
  engine exactly as applying it once;
- recovery refuses a journal from another server and skips mispaired
  epochs; a corrupt snapshot degrades to journal-only replay;
- checkpointing truncates the journal but never reuses LSNs, including
  across a full stop/start cycle (the empty-journal resume case);
- the crash-atomic DiskStore.put survives an injected torn write;
- fsck catches the inconsistencies recovery is supposed to prevent.
"""

import json
import os

import pytest

from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.errors import DocumentNotFound
from repro.faults import FaultPlan, FaultRule, InjectedDiskError
from repro.http.messages import Request, Response
from repro.server.engine import DCWSEngine, PURPOSE_HEADER
from repro.server.filestore import DiskStore, MemoryStore
from repro.server.fsck import FsckError, assert_clean, check_engine
from repro.server.persistence import (
    apply_record,
    checkpoint,
    load_snapshot,
    recover,
    save_snapshot,
)
from repro.server.wal import (
    WALError,
    WriteAheadJournal,
    iter_tail,
    scan_journal,
)

HOME = Location("home", 8001)
COOP = Location("coop", 8002)

SITE = {
    "/index.html": b'<html><a href="d.html">D</a><a href="e.html">E</a></html>',
    "/d.html": b'<html><a href="e.html">E</a></html>',
    "/e.html": b"<html>leaf</html>",
}


def make_engine(location=HOME, site=None, store=None):
    engine = DCWSEngine(location, ServerConfig(migration_hit_threshold=1.0),
                        store if store is not None
                        else MemoryStore(SITE if site is None else site),
                        entry_points=["/index.html"] if site is None
                        and store is None else [],
                        peers=[COOP if location == HOME else HOME])
    engine.initialize(0.0)
    return engine


def journaled_engine(tmp_path, **journal_kwargs):
    journal = WriteAheadJournal(str(tmp_path / "home.wal"),
                                location=str(HOME), fsync_policy="off",
                                **journal_kwargs)
    engine = make_engine()
    engine.attach_journal(journal)
    return engine, journal


def run_workload(engine):
    """A realistic mutation mix: hits, a migration, a content update, a
    revocation — every kind the policy callback and direct hooks emit."""
    engine.handle_request(Request("GET", "/index.html"), 1.0)
    engine.graph.record_hit("/d.html", 40)
    engine.policy.force_migrate("/d.html", COOP, now=2.0)
    engine.handle_request(Request("GET", "/e.html"), 3.0)
    engine.update_document("/e.html", b"<html>leaf v2</html>")
    engine.policy.force_migrate("/e.html", COOP, now=4.0)
    engine.handle_request(Request("GET", "/index.html"), 5.0)
    engine.policy.revoke("/e.html")


def engine_state(engine):
    """The comparable durable state of an engine (replay target)."""
    documents = {
        record.name: (str(record.location),
                      tuple(sorted(str(r) for r in record.replicas)),
                      record.version, record.dirty)
        for record in engine.graph.documents()}
    migrations = {}
    for name in engine.policy.migrated_names():
        coop, migrated_at = engine.policy.restored(name)
        migrations[name] = (str(coop), migrated_at)
    hosted = {
        key: (entry.fetched, entry.size, entry.version,
              str(entry.home), entry.original)
        for key, entry in engine.hosted.items()}
    return documents, migrations, hosted


class TestFraming:
    def test_append_scan_round_trip(self, tmp_path):
        path = str(tmp_path / "a.wal")
        journal = WriteAheadJournal(path, location="home:8001")
        first = journal.append("migrate", 1.0, name="/d.html",
                               location="coop:8002")
        second = journal.append("glt_row", 2.0, metric=17.5)
        journal.close()
        scan = scan_journal(path)
        assert not scan.torn_tail
        assert [r.lsn for r in scan.records] == [first, second] == [1, 2]
        assert scan.records[0].kind == "migrate"
        assert scan.records[0].location == "home:8001"
        assert scan.records[0].fields == {"name": "/d.html",
                                          "location": "coop:8002"}
        assert scan.records[1].fields["metric"] == 17.5
        assert scan.valid_bytes == os.path.getsize(path)

    def test_missing_file_scans_empty(self, tmp_path):
        scan = scan_journal(str(tmp_path / "nope.wal"))
        assert scan.records == [] and not scan.torn_tail

    def test_reopen_continues_lsns(self, tmp_path):
        path = str(tmp_path / "a.wal")
        with WriteAheadJournal(path, location="x") as journal:
            journal.append("glt_row", 1.0, metric=1.0)
        with WriteAheadJournal(path, location="x") as journal:
            assert journal.append("glt_row", 2.0, metric=2.0) == 2
        assert [r.lsn for r in scan_journal(path).records] == [1, 2]

    def test_interior_corruption_stops_at_last_good_prefix(self, tmp_path):
        path = str(tmp_path / "a.wal")
        with WriteAheadJournal(path, location="x") as journal:
            for i in range(3):
                journal.append("glt_row", float(i), metric=float(i))
        data = open(path, "rb").read()
        # Flip one payload byte of the middle record.
        import struct
        length0 = struct.unpack(">I", data[:4])[0]
        middle_payload_at = 8 + length0 + 8
        corrupt = bytearray(data)
        corrupt[middle_payload_at] ^= 0xFF
        open(path, "wb").write(bytes(corrupt))
        scan = scan_journal(path)
        assert [r.lsn for r in scan.records] == [1]
        assert scan.torn_tail  # decoding stopped early

    def test_garbage_length_treated_as_torn(self, tmp_path):
        path = str(tmp_path / "a.wal")
        open(path, "wb").write(b"\xff\xff\xff\xff\x00\x00\x00\x00payload")
        scan = scan_journal(path)
        assert scan.records == [] and scan.torn_tail

    def test_iter_tail_filters_by_lsn(self, tmp_path):
        path = str(tmp_path / "a.wal")
        with WriteAheadJournal(path, location="x") as journal:
            for i in range(4):
                journal.append("glt_row", float(i), metric=float(i))
        assert [r.lsn for r in iter_tail(path, after_lsn=2)] == [3, 4]

    def test_closed_journal_refuses_appends(self, tmp_path):
        journal = WriteAheadJournal(str(tmp_path / "a.wal"), location="x")
        journal.close()
        with pytest.raises(WALError):
            journal.append("glt_row", 1.0, metric=0.0)


class TestTornTailFuzz:
    """Satellite: truncate at every byte offset of the last record."""

    def build(self, tmp_path):
        engine, journal = journaled_engine(tmp_path)
        run_workload(engine)
        journal.close()
        return engine, journal.path

    def test_every_truncation_recovers_without_raising(self, tmp_path):
        source, path = self.build(tmp_path)
        scan = scan_journal(path)
        assert len(scan.records) >= 4
        data = open(path, "rb").read()
        # Byte offset where the final record begins.
        import struct
        offset, last_start = 0, 0
        while offset < len(data):
            last_start = offset
            length = struct.unpack_from(">I", data, offset)[0]
            offset += 8 + length
        for cut in range(last_start, len(data) + 1):
            torn = str(tmp_path / "torn.wal")
            open(torn, "wb").write(data[:cut])
            fresh = make_engine(store=source.store)
            stats = recover(fresh, None, torn, now=10.0)
            expected = (len(scan.records) if cut == len(data)
                        else len(scan.records) - 1)
            assert stats.records_replayed == expected, f"cut={cut}"
            assert stats.torn_tail_truncated == (last_start < cut < len(data))
            # Structural invariants always hold on the recovered engine.
            violations = check_engine(fresh, check_links=False)
            assert violations == [], f"cut={cut}: {violations}"

    def test_reopening_truncates_torn_tail_and_appends(self, tmp_path):
        __, path = self.build(tmp_path)
        data = open(path, "rb").read()
        open(path, "wb").write(data[:-3])  # tear the last record
        journal = WriteAheadJournal(path, location=str(HOME))
        assert journal.torn_tail_truncated
        before = scan_journal(path)
        assert not before.torn_tail  # open() truncated the damage
        lsn = journal.append("glt_row", 9.0, metric=9.0)
        journal.close()
        after = scan_journal(path)
        assert after.records[-1].lsn == lsn
        assert lsn > before.last_lsn  # torn record's LSN is not reused


class TestReplayIdempotent:
    """Satellite: replaying any journal prefix twice == once."""

    def test_prefix_twice_equals_once(self, tmp_path):
        source, journal = journaled_engine(tmp_path)
        run_workload(source)
        journal.close()
        records = scan_journal(journal.path).records
        assert len(records) >= 4
        for cut in range(len(records) + 1):
            prefix = records[:cut]
            once = make_engine(store=source.store)
            for record in prefix:
                apply_record(once, record)
            twice = make_engine(store=source.store)
            for record in prefix + prefix:
                apply_record(twice, record)
            assert engine_state(once) == engine_state(twice), f"cut={cut}"

    def test_full_replay_matches_live_engine(self, tmp_path):
        source, journal = journaled_engine(tmp_path)
        run_workload(source)
        journal.close()
        replayed = make_engine(store=source.store)
        recover(replayed, None, journal.path, now=10.0)
        live_docs, live_migrations, __ = engine_state(source)
        got_docs, got_migrations, __ = engine_state(replayed)
        assert got_migrations == live_migrations
        for name, (location, replicas, version, dirty) in live_docs.items():
            got_location, got_replicas, got_version, got_dirty = \
                got_docs[name]
            assert got_location == location
            assert got_replicas == replicas
            assert got_version >= version  # replay only moves forward
        assert_clean(replayed)


class TestRecoveryRefusals:
    def test_foreign_journal_refused(self, tmp_path):
        path = str(tmp_path / "other.wal")
        with WriteAheadJournal(path, location="other:9999") as journal:
            journal.append("glt_row", 1.0, metric=1.0)
        engine = make_engine()
        with pytest.raises(WALError):
            recover(engine, None, path, now=2.0)

    def test_mispaired_epoch_skipped(self, tmp_path):
        journal_path = str(tmp_path / "home.wal")
        snapshot_path = str(tmp_path / "home.snapshot")
        engine = make_engine()
        save_snapshot(engine, snapshot_path, now=1.0, epoch=7, last_lsn=0)
        with WriteAheadJournal(journal_path, location=str(HOME),
                               epoch=3) as journal:
            journal.append("content_update", 2.0, name="/e.html",
                           version=9, size=3, dirty=False)
        fresh = make_engine()
        stats = recover(fresh, snapshot_path, journal_path, now=3.0)
        assert stats.records_skipped == 1
        assert stats.records_replayed == 0
        assert fresh.graph.get("/e.html").version == 0

    def test_corrupt_snapshot_degrades_to_journal_only(self, tmp_path):
        journal_path = str(tmp_path / "home.wal")
        snapshot_path = str(tmp_path / "home.snapshot")
        source, journal = journaled_engine(tmp_path)
        run_workload(source)
        journal.close()
        save_snapshot(source, snapshot_path, now=6.0, epoch=1,
                      last_lsn=journal.last_lsn)
        # Corrupt one byte of the snapshot payload.
        data = json.load(open(snapshot_path))
        data["taken_at"] = data["taken_at"] + 1.0  # checksum now stale
        json.dump(data, open(snapshot_path, "w"))
        fresh = make_engine(store=source.store)
        stats = recover(fresh, snapshot_path, journal_path, now=10.0)
        assert not stats.snapshot_loaded
        assert "checksum" in stats.snapshot_error
        assert stats.records_replayed == len(scan_journal(journal_path).records)
        # Journal-only replay still lands the durable facts.
        assert fresh.policy.migrated_names() == ["/d.html"]
        assert_clean(fresh)

    def test_snapshot_checksum_detects_corruption(self, tmp_path):
        snapshot_path = str(tmp_path / "home.snapshot")
        save_snapshot(make_engine(), snapshot_path, now=1.0)
        data = json.load(open(snapshot_path))
        data["location"] = "evil:6666"
        json.dump(data, open(snapshot_path, "w"))
        from repro.server.persistence import SnapshotError
        with pytest.raises(SnapshotError):
            load_snapshot(snapshot_path)


class TestCheckpoint:
    def test_checkpoint_truncates_and_bumps_epoch(self, tmp_path):
        snapshot_path = str(tmp_path / "home.snapshot")
        engine, journal = journaled_engine(tmp_path)
        run_workload(engine)
        pre_lsn = journal.last_lsn
        epoch = checkpoint(engine, snapshot_path, now=7.0)
        assert epoch == 1
        assert journal.size_bytes == 0
        assert journal.records_since_checkpoint == 0
        assert journal.last_lsn == pre_lsn  # LSNs never reused
        snapshot = load_snapshot(snapshot_path)
        assert snapshot["epoch"] == 1
        assert snapshot["last_lsn"] == pre_lsn
        assert engine.log.count("checkpoint") == 1

    def test_recovery_after_checkpoint_replays_only_the_tail(self, tmp_path):
        snapshot_path = str(tmp_path / "home.snapshot")
        engine, journal = journaled_engine(tmp_path)
        run_workload(engine)
        checkpoint(engine, snapshot_path, now=7.0)
        engine._clock = 8.0
        engine.update_document("/index.html",
                               b'<html><a href="d.html">D</a>'
                               b'<a href="e.html">E</a>!</html>')
        tail_records = journal.records_since_checkpoint
        journal.close()
        fresh = make_engine(store=engine.store)
        stats = recover(fresh, snapshot_path, journal.path, now=10.0)
        assert stats.snapshot_loaded
        assert stats.records_replayed == tail_records
        assert engine_state(fresh)[1] == engine_state(engine)[1]
        assert fresh.graph.get("/index.html").version == \
            engine.graph.get("/index.html").version

    def test_empty_journal_restart_resumes_epoch_and_lsn(self, tmp_path):
        """Clean shutdown right after a checkpoint must not reset the
        epoch/LSN — otherwise the next incarnation's records would be
        filtered out by the snapshot's position stamp."""
        snapshot_path = str(tmp_path / "home.snapshot")
        engine, journal = journaled_engine(tmp_path)
        run_workload(engine)
        checkpoint(engine, snapshot_path, now=7.0)
        journal.close()

        second = make_engine(store=engine.store)
        stats = recover(second, snapshot_path, journal.path, now=10.0)
        reopened = WriteAheadJournal(journal.path, location=str(HOME),
                                     fsync_policy="off",
                                     epoch=stats.resume_epoch,
                                     start_lsn=stats.resume_lsn)
        assert reopened.epoch == 1
        assert reopened.last_lsn == journal.last_lsn
        second.attach_journal(reopened)
        second._clock = 11.0
        second.update_document("/e.html", b"<html>leaf v3</html>")
        reopened.close()

        third = make_engine(store=engine.store)
        final = recover(third, snapshot_path, journal.path, now=20.0)
        assert final.records_replayed >= 1
        assert final.records_skipped == 0
        assert third.graph.get("/e.html").version == \
            second.graph.get("/e.html").version


class TestFsyncPolicies:
    def test_always_fsyncs_each_acknowledged_append(self, tmp_path):
        journal = WriteAheadJournal(str(tmp_path / "a.wal"), location="x",
                                    fsync_policy="always")
        journal.append("glt_row", 1.0, metric=1.0)
        journal.append("glt_row", 2.0, metric=2.0)
        assert journal.syncs >= 2
        journal.close()

    def test_interval_defers_to_maybe_sync(self, tmp_path):
        journal = WriteAheadJournal(str(tmp_path / "a.wal"), location="x",
                                    fsync_policy="interval",
                                    fsync_interval=0.05)
        journal.append("glt_row", 1.0, metric=1.0)
        assert journal.syncs == 0
        assert journal.maybe_sync(now=100.0)      # overdue: fsyncs
        assert journal.syncs == 1
        assert not journal.maybe_sync(now=100.01)  # within interval
        assert not journal.maybe_sync(now=200.0)   # nothing new to sync
        journal.close()

    def test_off_never_fsyncs_on_append(self, tmp_path):
        journal = WriteAheadJournal(str(tmp_path / "a.wal"), location="x",
                                    fsync_policy="off")
        journal.append("glt_row", 1.0, metric=1.0)
        assert not journal.maybe_sync(now=100.0)
        assert journal.syncs == 0
        journal.close()

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(WALError):
            WriteAheadJournal(str(tmp_path / "a.wal"), location="x",
                              fsync_policy="sometimes")


class TestJournalFaults:
    def test_torn_append_recovers_cleanly(self, tmp_path):
        plan = FaultPlan([FaultRule(kind="torn_write", skip_first=2)])
        path = str(tmp_path / "a.wal")
        journal = WriteAheadJournal(path, location="x", faults=plan)
        journal.append("glt_row", 1.0, metric=1.0)
        journal.append("glt_row", 2.0, metric=2.0)
        with pytest.raises(InjectedDiskError):
            journal.append("glt_row", 3.0, metric=3.0)
        journal.close()
        scan = scan_journal(path)
        assert [r.lsn for r in scan.records] == [1, 2]
        assert scan.torn_tail
        reopened = WriteAheadJournal(path, location="x")
        assert reopened.torn_tail_truncated
        assert reopened.append("glt_row", 4.0, metric=4.0) == 3
        reopened.close()

    def test_disk_write_error_fails_append(self, tmp_path):
        plan = FaultPlan([FaultRule(kind="disk_write_error")])
        journal = WriteAheadJournal(str(tmp_path / "a.wal"), location="x",
                                    faults=plan)
        with pytest.raises(InjectedDiskError):
            journal.append("glt_row", 1.0, metric=1.0)
        journal.close()
        assert scan_journal(journal.path).records == []


class TestDiskStoreCrashAtomicity:
    """Satellite: DiskStore.put is temp + fsync + rename + dir fsync."""

    def test_torn_put_preserves_old_bytes(self, tmp_path):
        store = DiskStore(str(tmp_path / "docs"))
        store.put("/a.html", b"version one")
        plan = FaultPlan([FaultRule(kind="torn_write", name="/a.html")])
        store.faults = plan
        with pytest.raises(InjectedDiskError):
            store.put("/a.html", b"version two, longer")
        # The visible file still holds the complete old version …
        assert store.get("/a.html") == b"version one"
        # … and the torn temp file is invisible to listings.
        assert store.names() == ["/a.html"]

    def test_torn_first_put_leaves_no_document(self, tmp_path):
        store = DiskStore(str(tmp_path / "docs"))
        plan = FaultPlan([FaultRule(kind="torn_write", name="/a.html")])
        store.faults = plan
        with pytest.raises(InjectedDiskError):
            store.put("/a.html", b"never lands")
        assert "/a.html" not in store
        with pytest.raises(DocumentNotFound):
            store.get("/a.html")

    def test_write_error_put_preserves_old_bytes(self, tmp_path):
        store = DiskStore(str(tmp_path / "docs"))
        store.put("/a.html", b"version one")
        plan = FaultPlan([FaultRule(kind="disk_write_error",
                                    name="/a.html")])
        store.faults = plan
        with pytest.raises(InjectedDiskError):
            store.put("/a.html", b"version two")
        assert store.get("/a.html") == b"version one"


class TestFsck:
    def coop_with_copy(self):
        coop = make_engine(location=COOP, site={})
        home = make_engine()
        pull = coop.handle_request(
            Request("GET", "/~migrate/home/8001/d.html"), 1.0)
        pull.request.headers.set(PURPOSE_HEADER, "migration-pull")
        upstream = home.handle_request(pull.request, 1.1)
        coop.complete_pull(pull, upstream.response, 1.2)
        return coop

    def test_clean_engines_pass(self):
        assert check_engine(make_engine()) == []
        assert check_engine(self.coop_with_copy()) == []
        busy = make_engine()
        busy.policy.force_migrate("/d.html", COOP, now=1.0)
        assert check_engine(busy) == []

    def test_forgotten_migration_detected(self):
        engine = make_engine()
        engine.policy.force_migrate("/d.html", COOP, now=1.0)
        engine.policy.discard("/d.html")  # table forgets, graph remembers
        violations = check_engine(engine)
        assert any("forgotten" in v for v in violations)
        with pytest.raises(FsckError):
            assert_clean(engine)

    def test_orphan_migration_entry_detected(self):
        engine = make_engine()
        engine.policy.restore("/ghost.html", COOP, migrated_at=1.0)
        assert any("missing document" in v for v in check_engine(engine))

    def test_fetched_hosted_entry_without_bytes_detected(self):
        coop = self.coop_with_copy()
        key = "/~migrate/home/8001/d.html"
        coop.store.delete(key)
        assert any("no bytes" in v for v in check_engine(coop))

    def test_unfetched_entry_with_version_detected(self):
        coop = self.coop_with_copy()
        key = "/~migrate/home/8001/d.html"
        coop.hosted[key].fetched = False
        assert any("carries version" in v for v in check_engine(coop))

    def test_stale_rewritten_link_detected(self):
        engine = make_engine()
        # A clean document whose on-disk bytes link to a co-op that the
        # graph does not list as /d.html's location: a forgotten revoke.
        engine.store.put(
            "/index.html",
            b'<html><a href="http://coop:8002/~migrate/home/8001/d.html">'
            b'D</a></html>')
        engine.graph.get("/index.html").dirty = False
        violations = check_engine(engine)
        assert any("stale rewritten link" in v for v in violations)

    def test_entry_point_migrated_detected(self):
        engine = make_engine()
        engine.graph.get("/index.html").location = COOP
        assert any("entry point" in v for v in check_engine(engine))


class TestDurabilityObservability:
    def test_cluster_sample_reports_wal_posture(self, tmp_path):
        from repro.server.stats import sample_cluster

        engine, journal = journaled_engine(tmp_path)
        run_workload(engine)
        sample = sample_cluster(10.0, [engine])
        assert sample.wal_bytes == journal.size_bytes > 0
        assert sample.wal_last_lsn == journal.last_lsn
        assert sample.wal_records_since_checkpoint == \
            journal.records_since_checkpoint
        journal.close()

    def test_durability_endpoint_renders(self, tmp_path):
        engine, journal = journaled_engine(tmp_path)
        run_workload(engine)
        reply = engine.handle_request(Request("GET", "/~dcws/durability"),
                                      6.0)
        body = reply.response.body.decode()
        assert "fsync policy        off" in body
        assert f"last lsn            {journal.last_lsn}" in body
        assert "recovery: none this incarnation" in body
        journal.close()

    def test_durability_endpoint_after_recovery(self, tmp_path):
        source, journal = journaled_engine(tmp_path)
        run_workload(source)
        journal.close()
        fresh = make_engine(store=source.store)
        recover(fresh, None, journal.path, now=10.0)
        reply = fresh.handle_request(Request("GET", "/~dcws/durability"),
                                     11.0)
        body = reply.response.body.decode()
        assert "recovery (last):" in body
        assert "records replayed" in body
        assert "recoveries  1" in body
